// Discovery-as-a-service governance and durability: admission control
// and typed shedding, fair-share scheduling of concurrent jobs over one
// shared pool, parented CancelToken trees (sibling isolation, disconnect
// races), deadline propagation through queue time, crash-durable
// journaling with boot-time recovery, stale-tmp sweep and retention
// (docs/SERVING.md). The TCP shell gets one end-to-end pass; everything
// else drives JobManager directly.
#include <gtest/gtest.h>

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "obs/metrics.h"
#include "relational/io.h"
#include "serve/client.h"
#include "serve/job_manager.h"
#include "serve/server.h"
#include "workloads/synthetic.h"

namespace tupelo::serve {
namespace {

std::string EasySource(size_t n) {
  return WriteTdb(MakeSyntheticMatchingPair(n).source);
}

std::string EasyTarget(size_t n) {
  return WriteTdb(MakeSyntheticMatchingPair(n).target);
}

// Perturbs tuple values (a1 → z1, ...) so no mapping exists: the search
// runs its whole deadline, keeping a worker reliably busy.
std::string HardTarget(size_t n) {
  std::string t = EasyTarget(n);
  std::string out;
  out.reserve(t.size());
  for (size_t i = 0; i < t.size(); ++i) {
    out.push_back(t[i] == 'a' && i + 1 < t.size() &&
                          std::isdigit(static_cast<unsigned char>(t[i + 1]))
                      ? 'z'
                      : t[i]);
  }
  return out;
}

JobSpec EasyJob(size_t n = 3) {
  JobSpec spec;
  spec.source_tdb = EasySource(n);
  spec.target_tdb = EasyTarget(n);
  return spec;
}

JobSpec HardJob(int64_t deadline_millis, size_t n = 6) {
  JobSpec spec;
  spec.source_tdb = EasySource(n);
  spec.target_tdb = HardTarget(n);
  spec.deadline_millis = deadline_millis;
  return spec;
}

// Scoped journal directory in the test cwd, recursively removed on both
// construction (stale state from a crashed prior run) and destruction.
struct JournalDir {
  std::string path;

  explicit JournalDir(const std::string& name)
      : path("serve_test_" + name) {
    Remove();
  }
  ~JournalDir() { Remove(); }

  void Remove() {
    DIR* d = opendir(path.c_str());
    if (d == nullptr) return;
    while (struct dirent* e = readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      std::remove((path + "/" + name).c_str());
    }
    closedir(d);
    ::rmdir(path.c_str());
  }

  bool Has(const std::string& file) const {
    std::ifstream in(path + "/" + file);
    return in.good();
  }

  void Write(const std::string& file, const std::string& text) const {
    ::mkdir(path.c_str(), 0777);
    std::ofstream out(path + "/" + file);
    out << text;
  }

  size_t CountSuffix(const std::string& suffix) const {
    size_t count = 0;
    DIR* d = opendir(path.c_str());
    if (d == nullptr) return 0;
    while (struct dirent* e = readdir(d)) {
      const std::string name = e->d_name;
      if (name.size() >= suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        ++count;
      }
    }
    closedir(d);
    return count;
  }
};

JobManagerConfig BaseConfig(const JournalDir& dir) {
  JobManagerConfig config;
  config.journal_dir = dir.path;
  config.workers = 2;
  config.default_deadline_millis = 3000;
  config.checkpoint_interval_states = 32;
  return config;
}

TEST(ServeSpecTest, JsonRoundTripPreservesEveryField) {
  JobSpec spec = HardJob(250, 4);
  spec.tenant = "team-a";
  spec.algorithm = "beam";
  spec.heuristic = "h2";
  spec.max_states = 12345;
  spec.beam_width = 3;
  spec.supervise = true;
  spec.cancel_on_disconnect = true;

  Result<JobSpec> back = SpecFromJson(SpecToJson(spec));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->tenant, "team-a");
  EXPECT_EQ(back->source_tdb, spec.source_tdb);
  EXPECT_EQ(back->target_tdb, spec.target_tdb);
  EXPECT_EQ(back->algorithm, "beam");
  EXPECT_EQ(back->heuristic, "h2");
  EXPECT_EQ(back->deadline_millis, 250);
  EXPECT_EQ(back->max_states, 12345u);
  EXPECT_EQ(back->beam_width, 3u);
  EXPECT_TRUE(back->supervise);
  EXPECT_TRUE(back->cancel_on_disconnect);
}

TEST(ServeSpecTest, MalformedSpecsAreTypedRejections) {
  JobSpec bad_tdb = EasyJob();
  bad_tdb.source_tdb = "relation R (A1 {";
  Result<JobSpec> r1 = SpecFromJson(SpecToJson(bad_tdb));
  EXPECT_FALSE(r1.ok());

  JobSpec bad_algo = EasyJob();
  bad_algo.algorithm = "dijkstra";
  Result<JobSpec> r2 = SpecFromJson(SpecToJson(bad_algo));
  ASSERT_FALSE(r2.ok());
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);

  JobSpec bad_h = EasyJob();
  bad_h.heuristic = "h99";
  Result<JobSpec> r3 = SpecFromJson(SpecToJson(bad_h));
  ASSERT_FALSE(r3.ok());
  EXPECT_EQ(r3.status().code(), StatusCode::kInvalidArgument);
}

TEST(JobManagerTest, RunsAJobToVerifiedCompletion) {
  JournalDir dir("basic");
  JobManager manager(BaseConfig(dir));
  ASSERT_TRUE(manager.Start().ok());

  Result<SubmitOutcome> outcome = manager.Submit(EasyJob());
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  ASSERT_TRUE(outcome->accepted);

  Result<JobStatus> status = manager.WaitTerminal(outcome->job_id, 10000);
  ASSERT_TRUE(status.ok()) << status.status();
  EXPECT_EQ(status->state, JobState::kDone);
  EXPECT_TRUE(status->found);
  EXPECT_TRUE(status->verified);
  EXPECT_EQ(status->stop_reason, "found");
  EXPECT_FALSE(status->script.empty());
  // Terminal record + spec journal are both durable.
  EXPECT_TRUE(dir.Has(outcome->job_id + ".done"));
  EXPECT_TRUE(dir.Has(outcome->job_id + ".job"));
  manager.Shutdown();
}

TEST(JobManagerTest, QueuePressureShedsWithRetryAfterHint) {
  JournalDir dir("shed");
  JobManagerConfig config = BaseConfig(dir);
  config.workers = 1;
  config.queue_limit = 1;
  JobManager manager(config);
  ASSERT_TRUE(manager.Start().ok());

  // One running + one queued fills the admission bound; the burst after
  // that must shed with a positive Retry-After, and never leave a
  // journal entry behind (shed ≠ accepted-then-dropped).
  std::vector<std::string> accepted;
  size_t sheds = 0;
  for (int i = 0; i < 6; ++i) {
    Result<SubmitOutcome> outcome = manager.Submit(HardJob(400));
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    EXPECT_LE(outcome->queue_depth, config.queue_limit);
    if (outcome->accepted) {
      accepted.push_back(outcome->job_id);
    } else {
      ++sheds;
      EXPECT_GT(outcome->retry_after_millis, 0);
      EXPECT_TRUE(outcome->job_id.empty());
    }
  }
  EXPECT_GE(sheds, 1u);
  for (const std::string& id : accepted) {
    Result<JobStatus> status = manager.WaitTerminal(id, 15000);
    ASSERT_TRUE(status.ok()) << status.status();
    EXPECT_EQ(status->state, JobState::kDone) << id;
  }
  EXPECT_EQ(dir.CountSuffix(".job"), accepted.size());
  manager.Shutdown();
}

TEST(JobManagerTest, DeadlinePropagatesThroughQueueTime) {
  JournalDir dir("deadline");
  JobManagerConfig config = BaseConfig(dir);
  config.workers = 1;
  JobManager manager(config);
  ASSERT_TRUE(manager.Start().ok());

  // The first job holds the only worker for ~500ms; the second's 100ms
  // submit-to-finish budget is gone before it ever reaches a worker, so
  // it must stop as "deadline" without burning any search states.
  Result<SubmitOutcome> blocker = manager.Submit(HardJob(500));
  ASSERT_TRUE(blocker.ok() && blocker->accepted);
  Result<SubmitOutcome> starved = manager.Submit(HardJob(100));
  ASSERT_TRUE(starved.ok() && starved->accepted);

  Result<JobStatus> status = manager.WaitTerminal(starved->job_id, 15000);
  ASSERT_TRUE(status.ok()) << status.status();
  ASSERT_EQ(status->state, JobState::kDone);
  EXPECT_EQ(status->stop_reason, "deadline");
  EXPECT_EQ(status->states_examined, 0u);
  EXPECT_GE(status->queue_millis, 100.0);
  manager.Shutdown();
}

TEST(JobManagerTest, CancelQueuedJobIsTerminalAndIdempotent) {
  JournalDir dir("cancel_queued");
  JobManagerConfig config = BaseConfig(dir);
  config.workers = 1;
  JobManager manager(config);
  ASSERT_TRUE(manager.Start().ok());

  Result<SubmitOutcome> blocker = manager.Submit(HardJob(400));
  ASSERT_TRUE(blocker.ok() && blocker->accepted);
  Result<SubmitOutcome> queued = manager.Submit(EasyJob());
  ASSERT_TRUE(queued.ok() && queued->accepted);

  EXPECT_TRUE(manager.Cancel(queued->job_id));
  Result<JobStatus> status = manager.GetStatus(queued->job_id);
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status->state, JobState::kDone);
  EXPECT_EQ(status->stop_reason, "cancelled");
  EXPECT_TRUE(dir.Has(queued->job_id + ".done"));
  // Terminal jobs ignore further cancels; unknown ids report false.
  EXPECT_FALSE(manager.Cancel(queued->job_id));
  EXPECT_FALSE(manager.Cancel("j999999"));
  manager.Shutdown();
}

TEST(JobManagerTest, CancellingOneRunningJobLeavesSiblingsAlone) {
  JournalDir dir("siblings");
  JobManagerConfig config = BaseConfig(dir);
  config.workers = 2;
  JobManager manager(config);
  ASSERT_TRUE(manager.Start().ok());

  // Both jobs run concurrently; their CancelTokens are siblings parented
  // on the manager's root. Cancelling one must not leak into the other.
  Result<SubmitOutcome> victim = manager.Submit(HardJob(2000));
  Result<SubmitOutcome> bystander = manager.Submit(HardJob(300));
  ASSERT_TRUE(victim.ok() && victim->accepted);
  ASSERT_TRUE(bystander.ok() && bystander->accepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(manager.Cancel(victim->job_id));

  Result<JobStatus> cancelled = manager.WaitTerminal(victim->job_id, 10000);
  ASSERT_TRUE(cancelled.ok());
  ASSERT_EQ(cancelled->state, JobState::kDone);
  EXPECT_EQ(cancelled->stop_reason, "cancelled");

  Result<JobStatus> unaffected =
      manager.WaitTerminal(bystander->job_id, 10000);
  ASSERT_TRUE(unaffected.ok());
  ASSERT_EQ(unaffected->state, JobState::kDone);
  EXPECT_NE(unaffected->stop_reason, "cancelled");
  manager.Shutdown();
}

TEST(JobManagerTest, DisconnectCancelRacingCompletionIsBenign) {
  JournalDir dir("disconnect");
  JobManager manager(BaseConfig(dir));
  ASSERT_TRUE(manager.Start().ok());

  // The job finishes long before the "disconnect": the late cancel must
  // not disturb the terminal record.
  JobSpec spec = EasyJob();
  spec.cancel_on_disconnect = true;
  Result<SubmitOutcome> outcome = manager.Submit(std::move(spec));
  ASSERT_TRUE(outcome.ok() && outcome->accepted);
  Result<JobStatus> done = manager.WaitTerminal(outcome->job_id, 10000);
  ASSERT_TRUE(done.ok());
  ASSERT_EQ(done->state, JobState::kDone);
  const std::string reason_before = done->stop_reason;

  manager.OnClientDisconnect({outcome->job_id, "j424242"});
  Result<JobStatus> after = manager.GetStatus(outcome->job_id);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->stop_reason, reason_before);

  // A disconnect while the job is live does cancel it.
  Result<SubmitOutcome> live = manager.Submit([&] {
    JobSpec s = HardJob(5000);
    s.cancel_on_disconnect = true;
    return s;
  }());
  ASSERT_TRUE(live.ok() && live->accepted);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  manager.OnClientDisconnect({live->job_id});
  Result<JobStatus> killed = manager.WaitTerminal(live->job_id, 10000);
  ASSERT_TRUE(killed.ok());
  ASSERT_EQ(killed->state, JobState::kDone);
  EXPECT_EQ(killed->stop_reason, "cancelled");
  manager.Shutdown();
}

TEST(JobManagerTest, ShutdownPreemptsAndRecoveryCompletesEveryJob) {
  JournalDir dir("recovery");
  JobManagerConfig config = BaseConfig(dir);
  config.workers = 1;
  std::vector<std::string> ids;
  {
    JobManager manager(config);
    ASSERT_TRUE(manager.Start().ok());
    for (int i = 0; i < 3; ++i) {
      Result<SubmitOutcome> outcome = manager.Submit(HardJob(400));
      ASSERT_TRUE(outcome.ok() && outcome->accepted);
      ids.push_back(outcome->job_id);
    }
    // Preempt with the first job mid-search: its search stops at the
    // next cancel poll and, crucially, no `.done` record is written —
    // the exact on-disk state a kill -9 leaves behind.
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    manager.Shutdown();
  }
  EXPECT_EQ(dir.CountSuffix(".done"), 0u);
  EXPECT_EQ(dir.CountSuffix(".job"), 3u);

  JobManager recovered(config);
  ASSERT_TRUE(recovered.Start().ok());
  EXPECT_EQ(recovered.jobs_recovered(), 3u);
  for (const std::string& id : ids) {
    Result<JobStatus> status = recovered.WaitTerminal(id, 20000);
    ASSERT_TRUE(status.ok()) << status.status();
    EXPECT_EQ(status->state, JobState::kDone) << id;
    EXPECT_NE(status->stop_reason, "error") << id;
  }
  recovered.Shutdown();
}

TEST(JobManagerTest, RecoveryServesPriorTerminalRecords) {
  JournalDir dir("terminal_recovery");
  JobManagerConfig config = BaseConfig(dir);
  std::string id;
  std::string script;
  {
    JobManager manager(config);
    ASSERT_TRUE(manager.Start().ok());
    Result<SubmitOutcome> outcome = manager.Submit(EasyJob());
    ASSERT_TRUE(outcome.ok() && outcome->accepted);
    id = outcome->job_id;
    Result<JobStatus> status = manager.WaitTerminal(id, 10000);
    ASSERT_TRUE(status.ok());
    ASSERT_EQ(status->state, JobState::kDone);
    script = status->script;
    manager.Shutdown();
  }
  JobManager recovered(config);
  ASSERT_TRUE(recovered.Start().ok());
  EXPECT_EQ(recovered.jobs_recovered(), 0u);
  Result<JobStatus> status = recovered.GetStatus(id);
  ASSERT_TRUE(status.ok()) << status.status();
  EXPECT_EQ(status->state, JobState::kDone);
  EXPECT_TRUE(status->found);
  EXPECT_EQ(status->script, script);
  recovered.Shutdown();
}

TEST(JobManagerTest, BootSweepsOrphanedTmpFiles) {
  JournalDir dir("tmp_sweep");
  // A kill mid-AtomicWriteFile leaves `*.tmp` orphans; boot must sweep
  // them so they can never shadow a later rename.
  dir.Write("j000001.tck.tmp", "torn half-written checkpoint");
  dir.Write("j000002.done.tmp", "torn terminal record");
  dir.Write("keep.done", "{}");

  obs::MetricRegistry metrics;
  JobManagerConfig config = BaseConfig(dir);
  config.metrics = &metrics;
  JobManager manager(config);
  ASSERT_TRUE(manager.Start().ok());
  EXPECT_FALSE(dir.Has("j000001.tck.tmp"));
  EXPECT_FALSE(dir.Has("j000002.done.tmp"));
  EXPECT_TRUE(dir.Has("keep.done"));
  EXPECT_EQ(metrics.GetCounter("serve.journal.tmp_swept").value(), 2u);
  manager.Shutdown();
}

TEST(CheckpointHygieneTest, RemoveStaleCheckpointTmpAndDirectorySweep) {
  JournalDir dir("hygiene_unit");
  dir.Write("run.tck.tmp", "orphan");
  dir.Write("run.tck", "real");
  // Path-level: removes exactly `<path>.tmp`.
  EXPECT_TRUE(RemoveStaleCheckpointTmp(dir.path + "/run.tck"));
  EXPECT_FALSE(RemoveStaleCheckpointTmp(dir.path + "/run.tck"));
  EXPECT_TRUE(dir.Has("run.tck"));
  // Directory-level: removes every regular `*.tmp`, counts them.
  dir.Write("a.tmp", "x");
  dir.Write("b.job.tmp", "y");
  dir.Write("c.job", "z");
  EXPECT_EQ(SweepStaleTmpFiles(dir.path), 2);
  EXPECT_EQ(SweepStaleTmpFiles(dir.path), 0);
  EXPECT_TRUE(dir.Has("c.job"));
}

TEST(JobManagerTest, RetentionPrunesOldestTerminalTriples) {
  JournalDir dir("retention");
  JobManagerConfig config = BaseConfig(dir);
  config.workers = 1;
  config.checkpoint_keep = 2;
  JobManager manager(config);
  ASSERT_TRUE(manager.Start().ok());
  std::vector<std::string> ids;
  for (int i = 0; i < 4; ++i) {
    Result<SubmitOutcome> outcome = manager.Submit(EasyJob());
    ASSERT_TRUE(outcome.ok() && outcome->accepted);
    ids.push_back(outcome->job_id);
    Result<JobStatus> status = manager.WaitTerminal(ids.back(), 10000);
    ASSERT_TRUE(status.ok());
    ASSERT_EQ(status->state, JobState::kDone);
  }
  manager.Shutdown();
  // Only the newest `checkpoint_keep` completed triples survive on disk.
  EXPECT_LE(dir.CountSuffix(".done"), 2u);
  EXPECT_LE(dir.CountSuffix(".job"), 2u);
  EXPECT_FALSE(dir.Has(ids[0] + ".done"));
  EXPECT_TRUE(dir.Has(ids[3] + ".done"));
}

TEST(JobManagerTest, ConcurrentMultiJobGovernanceOverOneSharedPool) {
  JournalDir dir("governance");
  obs::MetricRegistry metrics;
  JobManagerConfig config = BaseConfig(dir);
  config.workers = 2;
  config.pool_threads = 2;  // one ThreadPool shared by every job
  config.fair_states_per_job = 5000;
  config.metrics = &metrics;
  JobManager manager(config);
  ASSERT_TRUE(manager.Start().ok());

  // A mixed fleet under concurrent cancels and disconnects: every
  // accepted job must reach a clean terminal state, hard jobs must stay
  // inside their fair-share state slice, and nothing may crash or race
  // (this test is the TSan target for the serving layer).
  std::vector<std::string> ids;
  for (int i = 0; i < 8; ++i) {
    JobSpec spec = i % 2 == 0 ? EasyJob() : HardJob(600);
    spec.cancel_on_disconnect = i % 4 == 3;
    Result<SubmitOutcome> outcome = manager.Submit(std::move(spec));
    ASSERT_TRUE(outcome.ok()) << outcome.status();
    if (outcome->accepted) ids.push_back(outcome->job_id);
  }
  std::thread chaos([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    if (ids.size() > 1) manager.Cancel(ids[1]);
    manager.OnClientDisconnect({ids.back()});
  });
  for (const std::string& id : ids) {
    Result<JobStatus> status = manager.WaitTerminal(id, 20000);
    ASSERT_TRUE(status.ok()) << status.status();
    EXPECT_EQ(status->state, JobState::kDone) << id;
    EXPECT_NE(status->stop_reason, "error") << id;
    // Fair share: no job may exceed its state ration (slack for the
    // final checkpoint interval).
    EXPECT_LE(status->states_examined,
              config.fair_states_per_job + config.checkpoint_interval_states)
        << id;
  }
  chaos.join();
  manager.Shutdown();
  EXPECT_EQ(metrics.GetCounter("serve.jobs.accepted").value(),
            static_cast<uint64_t>(ids.size()));
}

TEST(ServerTest, EndToEndSubmitStreamCancelMetricsShutdown) {
  JournalDir dir("server_e2e");
  ServerConfig config;
  config.port = 0;  // ephemeral
  config.jobs = BaseConfig(dir);
  obs::MetricRegistry metrics;
  config.jobs.metrics = &metrics;
  Server server(std::move(config));
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  Result<Client> client = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok()) << client.status();
  EXPECT_TRUE(client->Ping().ok());

  // Submit an easy job and stream it to a verified terminal state.
  Result<SubmitReply> reply = client->Submit(EasyJob());
  ASSERT_TRUE(reply.ok()) << reply.status();
  ASSERT_TRUE(reply->accepted);
  ASSERT_FALSE(reply->job_id.empty());
  Result<JobStatus> done = client->AwaitTerminal(reply->job_id, 15000);
  ASSERT_TRUE(done.ok()) << done.status();
  EXPECT_TRUE(done->found);
  EXPECT_TRUE(done->verified);
  EXPECT_FALSE(done->script.empty());

  // A malformed spec is a typed rejection at the wire layer.
  JobSpec bad = EasyJob();
  bad.algorithm = "dijkstra";
  EXPECT_FALSE(client->Submit(bad).ok());

  // Cancel on a terminal job reports false; unknown status is NotFound.
  Result<bool> cancelled = client->Cancel(reply->job_id);
  ASSERT_TRUE(cancelled.ok());
  EXPECT_FALSE(*cancelled);
  EXPECT_FALSE(client->GetStatus("j424242").ok());

  Result<obs::JsonValue> m = client->Metrics();
  ASSERT_TRUE(m.ok()) << m.status();
  const obs::JsonValue* registry = m->Find("metrics");
  ASSERT_NE(registry, nullptr);
  const obs::JsonValue* counters = registry->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->Find("serve.jobs.completed"), nullptr);

  EXPECT_TRUE(client->RequestShutdown().ok());
  server.Shutdown();
  EXPECT_TRUE(server.stop_requested());
}

TEST(ServerTest, ClientDisconnectCancelsInteractiveJobs) {
  JournalDir dir("server_disc");
  ServerConfig config;
  config.port = 0;
  config.jobs = BaseConfig(dir);
  Server server(std::move(config));
  ASSERT_TRUE(server.Start().ok());

  std::string job_id;
  {
    Result<Client> client = Client::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    JobSpec spec = HardJob(10000);
    spec.cancel_on_disconnect = true;
    Result<SubmitReply> reply = client->Submit(spec);
    ASSERT_TRUE(reply.ok() && reply->accepted);
    job_id = reply->job_id;
    client->Close();  // vanish mid-job
  }
  // A second connection watches the abandoned job get cancelled.
  Result<Client> watcher = Client::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(watcher.ok());
  Result<JobStatus> done = watcher->AwaitTerminal(job_id, 15000);
  ASSERT_TRUE(done.ok()) << done.status();
  EXPECT_EQ(done->stop_reason, "cancelled");
  server.Shutdown();
}

}  // namespace
}  // namespace tupelo::serve
