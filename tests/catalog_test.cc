#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "relational/catalog.h"
#include "relational/io.h"
#include "relational/tnf.h"
#include "workloads/flights.h"

namespace tupelo {
namespace {

Database Tdb(const char* text) {
  Result<Database> db = ParseTdb(text);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

TEST(CatalogTest, RelationCatalogListsRelations) {
  Database db = Tdb("relation B (X) { }\nrelation A (Y) { }");
  Relation cat = BuildRelationCatalog(db);
  EXPECT_EQ(cat.name(), kCatalogRelations);
  ASSERT_EQ(cat.size(), 2u);
  // Name-sorted like Database iteration.
  EXPECT_EQ(cat.tuples()[0], Tuple::OfAtoms({"A"}));
  EXPECT_EQ(cat.tuples()[1], Tuple::OfAtoms({"B"}));
}

TEST(CatalogTest, AttributeCatalogListsPositions) {
  Database db = Tdb("relation R (A, B, C) { }");
  Relation cat = BuildAttributeCatalog(db);
  ASSERT_EQ(cat.size(), 3u);
  EXPECT_EQ(cat.tuples()[0], Tuple::OfAtoms({"R", "A", "0"}));
  EXPECT_EQ(cat.tuples()[2], Tuple::OfAtoms({"R", "C", "2"}));
}

TEST(CatalogTest, EmptyDatabaseGivesEmptyCatalogs) {
  Database db;
  EXPECT_TRUE(BuildRelationCatalog(db).empty());
  EXPECT_TRUE(BuildAttributeCatalog(db).empty());
}

TEST(CatalogTest, TnfViaCatalogMatchesDirectEncoder) {
  for (const Database& db :
       {MakeFlightsA(), MakeFlightsB(), MakeFlightsC()}) {
    Result<bool> same = VerifyCatalogTnf(db);
    ASSERT_TRUE(same.ok()) << same.status();
    EXPECT_TRUE(*same);
  }
}

TEST(CatalogTest, TnfViaCatalogHandlesNulls) {
  Database db = Tdb("relation R (A, B) { (1, null) (null, 2) }");
  Result<bool> same = VerifyCatalogTnf(db);
  ASSERT_TRUE(same.ok());
  EXPECT_TRUE(*same);
}

TEST(CatalogTest, TnfViaCatalogDecodesBack) {
  // The catalog-built TNF is a valid TNF: decoding it recovers the
  // original database contents.
  Database db = MakeFlightsC();
  Result<Relation> tnf = BuildTnfViaCatalog(db);
  ASSERT_TRUE(tnf.ok()) << tnf.status();
  Result<Database> back = DecodeTnf(*tnf);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(back->ContentsEqual(db));
}

TEST(CatalogTest, CatalogOfCatalogIsWellFormed) {
  // The catalogs are ordinary relations: they themselves can be cataloged
  // and TNF-encoded (the construction is closed).
  Database db = MakeFlightsA();
  Database meta;
  ASSERT_TRUE(meta.AddRelation(BuildRelationCatalog(db)).ok());
  ASSERT_TRUE(meta.AddRelation(BuildAttributeCatalog(db)).ok());
  Result<bool> same = VerifyCatalogTnf(meta);
  ASSERT_TRUE(same.ok());
  EXPECT_TRUE(*same);
}

}  // namespace
}  // namespace tupelo
