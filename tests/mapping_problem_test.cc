#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/mapping_problem.h"
#include "fira/builtin_functions.h"
#include "heuristics/heuristic_factory.h"
#include "relational/io.h"
#include "workloads/flights.h"

namespace tupelo {
namespace {

Database Tdb(const char* text) {
  Result<Database> db = ParseTdb(text);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

MappingProblem MakeProblem(Database source, Database target,
                           SuccessorConfig config = {},
                           const FunctionRegistry* registry = nullptr,
                           std::vector<SemanticCorrespondence> corrs = {}) {
  std::unique_ptr<Heuristic> h =
      MakeHeuristic(HeuristicKind::kH1, target, SearchAlgorithm::kRbfs);
  return MappingProblem(std::move(source), std::move(target), std::move(h),
                        registry, std::move(corrs), config);
}

bool HasOp(const std::vector<Op>& ops, const Op& want) {
  return std::find(ops.begin(), ops.end(), want) != ops.end();
}

// ---------------------------------------------------------------------------
// Goal test
// ---------------------------------------------------------------------------

TEST(MappingProblemTest, GoalIsContainment) {
  Database source = Tdb("relation R (A, X) { (1, 9) }");
  Database target = Tdb("relation R (A) { (1) }");
  MappingProblem p = MakeProblem(source, target);
  EXPECT_TRUE(p.IsGoal(source));  // extra column tolerated
  Database wrong = Tdb("relation R (A, X) { (2, 9) }");
  EXPECT_FALSE(p.IsGoal(wrong));
}

TEST(MappingProblemTest, StateKeyMatchesFingerprint) {
  Database source = Tdb("relation R (A) { (1) }");
  MappingProblem p = MakeProblem(source, source);
  EXPECT_EQ(p.StateKey(source), source.Fingerprint());
}

// ---------------------------------------------------------------------------
// Candidate generation with pruning ("obviously inapplicable" rules, §2.3)
// ---------------------------------------------------------------------------

TEST(CandidateTest, RenameAttrOnlyIntoMissingTargetAttrs) {
  Database source = Tdb("relation R (A, Keep) { (1, 2) }");
  Database target = Tdb("relation R (B, Keep) { (1, 2) }");
  MappingProblem p = MakeProblem(source, target);
  std::vector<Op> ops = p.CandidateOps(source);
  EXPECT_TRUE(HasOp(ops, RenameAttrOp{"R", "A", "B"}));
  // Renames only target missing target attributes; renaming into a
  // non-target name is never generated.
  for (const Op& op : ops) {
    if (const auto* r = std::get_if<RenameAttrOp>(&op)) {
      EXPECT_EQ(r->to, "B") << OpToScript(op);
    }
  }
  // Once every target attribute is present, the rename class disappears
  // (§2.3's "obviously inapplicable" rule).
  MappingProblem done = MakeProblem(target, target);
  for (const Op& op : done.CandidateOps(target)) {
    EXPECT_NE(OpName(op), "rename_att") << OpToScript(op);
  }
}

TEST(CandidateTest, RenameRelOnlyWhenNameNotInTarget) {
  Database source = Tdb("relation S (A) { (1) }");
  Database target = Tdb("relation T (A) { (1) }");
  MappingProblem p = MakeProblem(source, target);
  std::vector<Op> ops = p.CandidateOps(source);
  EXPECT_TRUE(HasOp(ops, RenameRelOp{"S", "T"}));
  // Source relation already named as in target: no rel renames at all.
  MappingProblem p2 = MakeProblem(target, target);
  for (const Op& op : p2.CandidateOps(target)) {
    EXPECT_EQ(OpName(op), "merge") << OpToScript(op);  // nothing else fires
  }
}

TEST(CandidateTest, DropOnlyNonTargetAttrs) {
  Database source = Tdb("relation R (A, B) { (1, 2) }");
  Database target = Tdb("relation R (A) { (1) }");
  MappingProblem p = MakeProblem(source, target);
  std::vector<Op> ops = p.CandidateOps(source);
  EXPECT_TRUE(HasOp(ops, DropOp{"R", "B"}));
  EXPECT_FALSE(HasOp(ops, DropOp{"R", "A"}));
}

TEST(CandidateTest, PromoteRequiresTargetAttributeEvidence) {
  // FlightsB -> FlightsA: Route's values (ATL29/ORD17) are target attrs.
  MappingProblem p = MakeProblem(MakeFlightsB(), MakeFlightsA());
  std::vector<Op> ops = p.CandidateOps(MakeFlightsB());
  EXPECT_TRUE(HasOp(ops, PromoteOp{"Prices", "Route", "Cost"}));
  // Carrier's values (AirEast...) are not target attribute names.
  EXPECT_FALSE(HasOp(ops, PromoteOp{"Prices", "Carrier", "Cost"}));
}

TEST(CandidateTest, PartitionRequiresTargetRelationEvidence) {
  // FlightsB -> FlightsC: Carrier values name target relations.
  MappingProblem p = MakeProblem(MakeFlightsB(), MakeFlightsC());
  std::vector<Op> ops = p.CandidateOps(MakeFlightsB());
  EXPECT_TRUE(HasOp(ops, PartitionOp{"Prices", "Carrier"}));
  EXPECT_FALSE(HasOp(ops, PartitionOp{"Prices", "Route"}));
}

TEST(CandidateTest, DemoteRequiresMetadataInTargetValues) {
  // FlightsA -> FlightsB: A's attrs ATL29/ORD17 appear among B's values.
  MappingProblem forward = MakeProblem(MakeFlightsA(), MakeFlightsB());
  EXPECT_TRUE(HasOp(forward.CandidateOps(MakeFlightsA()),
                    DemoteOp{"Flights"}));
  // FlightsB -> FlightsA: no attribute of B appears among A's values.
  MappingProblem backward = MakeProblem(MakeFlightsB(), MakeFlightsA());
  EXPECT_FALSE(HasOp(backward.CandidateOps(MakeFlightsB()),
                     DemoteOp{"Prices"}));
}

TEST(CandidateTest, MergeOnlyWhenNullsPresent) {
  Database no_nulls = Tdb("relation R (A, B) { (1, 2) (1, 3) }");
  Database target = Tdb("relation R (A, B) { (1, 2) }");
  MappingProblem p = MakeProblem(no_nulls, target);
  for (const Op& op : p.CandidateOps(no_nulls)) {
    EXPECT_NE(OpName(op), "merge");
  }
  Database with_nulls = Tdb("relation R (A, B) { (1, 2) (1, null) }");
  MappingProblem p2 = MakeProblem(with_nulls, target);
  EXPECT_TRUE(HasOp(p2.CandidateOps(with_nulls), MergeOp{"R", "A"}));
}

TEST(CandidateTest, LambdaOnlyWithInputsPresentAndTargetOutput) {
  FunctionRegistry reg;
  ASSERT_TRUE(RegisterBuiltinFunctions(&reg).ok());
  std::vector<SemanticCorrespondence> corrs = {
      {"add", {"Cost", "AgentFee"}, "TotalCost"}};
  MappingProblem p = MakeProblem(MakeFlightsB(), MakeFlightsC(), {}, &reg,
                                 corrs);
  std::vector<Op> ops = p.CandidateOps(MakeFlightsB());
  EXPECT_TRUE(HasOp(
      ops, ApplyFunctionOp{"Prices", "add", {"Cost", "AgentFee"},
                           "TotalCost"}));
  // Against a target without TotalCost, the λ is pruned.
  MappingProblem p2 = MakeProblem(MakeFlightsB(), MakeFlightsA(), {}, &reg,
                                  corrs);
  for (const Op& op : p2.CandidateOps(MakeFlightsB())) {
    EXPECT_NE(OpName(op), "apply");
  }
}

TEST(CandidateTest, ProductRequiresSpanningTargetRelation) {
  Database source = Tdb(
      "relation R (A) { (1) }\n"
      "relation S (B) { (2) }");
  Database spanning = Tdb("relation T (A, B) { (1, 2) }");
  MappingProblem p = MakeProblem(source, spanning);
  EXPECT_TRUE(HasOp(p.CandidateOps(source), ProductOp{"R", "S"}));
  Database nonspanning = Tdb("relation T (A) { (1) }");
  MappingProblem p2 = MakeProblem(source, nonspanning);
  EXPECT_FALSE(HasOp(p2.CandidateOps(source), ProductOp{"R", "S"}));
}

TEST(CandidateTest, ProductCanBeDisabled) {
  Database source = Tdb("relation R (A) { (1) }\nrelation S (B) { (2) }");
  Database target = Tdb("relation T (A, B) { (1, 2) }");
  SuccessorConfig config;
  config.enable_product = false;
  MappingProblem p = MakeProblem(source, target, config);
  EXPECT_FALSE(HasOp(p.CandidateOps(source), ProductOp{"R", "S"}));
}

TEST(CandidateTest, DereferenceRequiresPointerEvidence) {
  Database source = Tdb("relation R (P, A) { (A, 1) }");
  Database target = Tdb("relation R (P, A, Out) { (A, 1, 1) }");
  MappingProblem p = MakeProblem(source, target);
  EXPECT_TRUE(HasOp(p.CandidateOps(source), DereferenceOp{"R", "P", "Out"}));
  // Without any value naming an attribute, no dereference.
  Database source2 = Tdb("relation R (P, A) { (zzz, 1) }");
  MappingProblem p2 = MakeProblem(source2, target);
  EXPECT_FALSE(
      HasOp(p2.CandidateOps(source2), DereferenceOp{"R", "P", "Out"}));
}

TEST(CandidateTest, UnprunedGeneratesStrictlyMore) {
  SuccessorConfig pruned;
  SuccessorConfig unpruned;
  unpruned.prune = false;
  MappingProblem p1 = MakeProblem(MakeFlightsB(), MakeFlightsA(), pruned);
  MappingProblem p2 = MakeProblem(MakeFlightsB(), MakeFlightsA(), unpruned);
  size_t pruned_count = p1.CandidateOps(MakeFlightsB()).size();
  size_t unpruned_count = p2.CandidateOps(MakeFlightsB()).size();
  EXPECT_GT(unpruned_count, pruned_count);
}

TEST(CandidateTest, DeterministicOrder) {
  MappingProblem p = MakeProblem(MakeFlightsB(), MakeFlightsA());
  std::vector<Op> ops1 = p.CandidateOps(MakeFlightsB());
  std::vector<Op> ops2 = p.CandidateOps(MakeFlightsB());
  EXPECT_EQ(ops1, ops2);
}

// ---------------------------------------------------------------------------
// Expand
// ---------------------------------------------------------------------------

TEST(ExpandTest, DropsFailedAndDuplicateStates) {
  Database source = Tdb("relation R (A1, A2) { (x, x) }");
  Database target = Tdb("relation R (B1) { (x) }");
  MappingProblem p = MakeProblem(source, target);
  auto successors = p.Expand(source);
  // No two successors share a fingerprint, and none equals the input.
  std::vector<uint64_t> keys;
  for (const auto& s : successors) {
    keys.push_back(p.StateKey(s.state));
    EXPECT_NE(p.StateKey(s.state), p.StateKey(source));
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::adjacent_find(keys.begin(), keys.end()), keys.end());
}

TEST(ExpandTest, SuccessorStatesMatchApplyOp) {
  Database source = MakeFlightsB();
  MappingProblem p = MakeProblem(source, MakeFlightsA());
  for (const auto& s : p.Expand(source)) {
    Result<Database> redo = ApplyOp(s.action, source, nullptr);
    ASSERT_TRUE(redo.ok()) << OpToScript(s.action);
    EXPECT_TRUE(redo->ContentsEqual(s.state)) << OpToScript(s.action);
  }
}

TEST(ExpandTest, BranchingProportionalToInstanceSizes) {
  // §2.3: branching factor proportional to |s| + |t|. Just sanity-check it
  // stays small on the flights instances.
  MappingProblem p = MakeProblem(MakeFlightsB(), MakeFlightsA());
  EXPECT_LE(p.Expand(MakeFlightsB()).size(), 32u);
  EXPECT_GE(p.Expand(MakeFlightsB()).size(), 3u);
}

}  // namespace
}  // namespace tupelo
