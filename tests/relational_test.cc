#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "relational/database.h"
#include "relational/relation.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace tupelo {
namespace {

Relation MakeRel(const char* name, std::vector<std::string> attrs) {
  Result<Relation> r = Relation::Create(name, std::move(attrs));
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "⊥");
}

TEST(ValueTest, AtomConstruction) {
  Value v("abc");
  EXPECT_FALSE(v.is_null());
  EXPECT_EQ(v.atom(), "abc");
  EXPECT_EQ(v.ToString(), "abc");
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_NE(Value("a"), Value("b"));
  EXPECT_NE(Value("a"), Value::Null());
  EXPECT_LT(Value::Null(), Value("a"));  // nulls order first
  EXPECT_LT(Value("a"), Value("b"));
}

TEST(ValueTest, EmptyAtomIsNotNull) {
  Value v("");
  EXPECT_FALSE(v.is_null());
  EXPECT_NE(v, Value::Null());
}

TEST(ValueTest, MergeCompatibility) {
  EXPECT_TRUE(MergeCompatible(Value("a"), Value("a")));
  EXPECT_TRUE(MergeCompatible(Value("a"), Value::Null()));
  EXPECT_TRUE(MergeCompatible(Value::Null(), Value("a")));
  EXPECT_TRUE(MergeCompatible(Value::Null(), Value::Null()));
  EXPECT_FALSE(MergeCompatible(Value("a"), Value("b")));
}

TEST(ValueTest, MergeValuesPicksNonNull) {
  EXPECT_EQ(MergeValues(Value("a"), Value::Null()), Value("a"));
  EXPECT_EQ(MergeValues(Value::Null(), Value("b")), Value("b"));
  EXPECT_EQ(MergeValues(Value("a"), Value("a")), Value("a"));
  EXPECT_TRUE(MergeValues(Value::Null(), Value::Null()).is_null());
}

// ---------------------------------------------------------------------------
// Tuple
// ---------------------------------------------------------------------------

TEST(TupleTest, OfAtoms) {
  Tuple t = Tuple::OfAtoms({"x", "y"});
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], Value("x"));
  EXPECT_EQ(t[1], Value("y"));
}

TEST(TupleTest, AppendAndErase) {
  Tuple t = Tuple::OfAtoms({"a", "b", "c"});
  t.Append(Value("d"));
  EXPECT_EQ(t.size(), 4u);
  t.Erase(1);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t[1], Value("c"));
}

TEST(TupleTest, MergeCompatibleWith) {
  Tuple a(std::vector<Value>{Value("x"), Value::Null()});
  Tuple b(std::vector<Value>{Value("x"), Value("y")});
  Tuple c(std::vector<Value>{Value("z"), Value("y")});
  EXPECT_TRUE(a.MergeCompatibleWith(b));
  EXPECT_FALSE(b.MergeCompatibleWith(c));
  Tuple merged = a.MergedWith(b);
  EXPECT_EQ(merged, b);
}

TEST(TupleTest, ToStringShowsNulls) {
  Tuple t(std::vector<Value>{Value("a"), Value::Null()});
  EXPECT_EQ(t.ToString(), "(a, ⊥)");
}

TEST(TupleTest, OrderingIsLexicographic) {
  EXPECT_LT(Tuple::OfAtoms({"a", "b"}), Tuple::OfAtoms({"a", "c"}));
  EXPECT_LT(Tuple::OfAtoms({"a"}), Tuple::OfAtoms({"a", "a"}));
}

// ---------------------------------------------------------------------------
// Relation
// ---------------------------------------------------------------------------

TEST(RelationTest, CreateValidatesName) {
  EXPECT_FALSE(Relation::Create("", {"A"}).ok());
}

TEST(RelationTest, CreateValidatesAttributes) {
  EXPECT_FALSE(Relation::Create("R", {"A", "A"}).ok());
  EXPECT_FALSE(Relation::Create("R", {""}).ok());
  EXPECT_TRUE(Relation::Create("R", {}).ok());
}

TEST(RelationTest, AttributeIndex) {
  Relation r = MakeRel("R", {"A", "B", "C"});
  EXPECT_EQ(r.AttributeIndex("B"), 1u);
  EXPECT_FALSE(r.AttributeIndex("Z").has_value());
  EXPECT_TRUE(r.HasAttribute("C"));
  EXPECT_FALSE(r.HasAttribute("c"));  // case sensitive
}

TEST(RelationTest, AddTupleChecksArity) {
  Relation r = MakeRel("R", {"A", "B"});
  EXPECT_TRUE(r.AddRow({"1", "2"}).ok());
  EXPECT_FALSE(r.AddRow({"1"}).ok());
  EXPECT_FALSE(r.AddRow({"1", "2", "3"}).ok());
  EXPECT_EQ(r.size(), 1u);
}

TEST(RelationTest, AddAttributeFillsExistingTuples) {
  Relation r = MakeRel("R", {"A"});
  ASSERT_TRUE(r.AddRow({"1"}).ok());
  ASSERT_TRUE(r.AddAttribute("B", Value("x")).ok());
  EXPECT_EQ(r.arity(), 2u);
  EXPECT_EQ(r.tuples()[0][1], Value("x"));
  ASSERT_TRUE(r.AddAttribute("C").ok());
  EXPECT_TRUE(r.tuples()[0][2].is_null());
}

TEST(RelationTest, AddAttributeRejectsDuplicate) {
  Relation r = MakeRel("R", {"A"});
  EXPECT_EQ(r.AddAttribute("A").code(), StatusCode::kAlreadyExists);
}

TEST(RelationTest, DropAttribute) {
  Relation r = MakeRel("R", {"A", "B", "C"});
  ASSERT_TRUE(r.AddRow({"1", "2", "3"}).ok());
  ASSERT_TRUE(r.DropAttribute("B").ok());
  EXPECT_EQ(r.attributes(), (std::vector<std::string>{"A", "C"}));
  EXPECT_EQ(r.tuples()[0], Tuple::OfAtoms({"1", "3"}));
  EXPECT_EQ(r.DropAttribute("B").code(), StatusCode::kNotFound);
}

TEST(RelationTest, RenameAttribute) {
  Relation r = MakeRel("R", {"A", "B"});
  ASSERT_TRUE(r.RenameAttribute("A", "X").ok());
  EXPECT_TRUE(r.HasAttribute("X"));
  EXPECT_FALSE(r.HasAttribute("A"));
  EXPECT_EQ(r.RenameAttribute("X", "B").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(r.RenameAttribute("A", "Y").code(), StatusCode::kNotFound);
  EXPECT_FALSE(r.RenameAttribute("B", "").ok());
}

TEST(RelationTest, DistinctValuesSkipsNullsAndDedups) {
  Relation r = MakeRel("R", {"A"});
  ASSERT_TRUE(r.AddTuple(Tuple(std::vector<Value>{Value("x")})).ok());
  ASSERT_TRUE(r.AddTuple(Tuple(std::vector<Value>{Value::Null()})).ok());
  ASSERT_TRUE(r.AddTuple(Tuple(std::vector<Value>{Value("y")})).ok());
  ASSERT_TRUE(r.AddTuple(Tuple(std::vector<Value>{Value("x")})).ok());
  Result<std::vector<std::string>> values = r.DistinctValues("A");
  ASSERT_TRUE(values.ok());
  EXPECT_EQ(values.value(), (std::vector<std::string>{"x", "y"}));
  EXPECT_FALSE(r.DistinctValues("Z").ok());
}

TEST(RelationTest, ProjectTuples) {
  Relation r = MakeRel("R", {"A", "B", "C"});
  ASSERT_TRUE(r.AddRow({"1", "2", "3"}).ok());
  ASSERT_TRUE(r.AddRow({"4", "5", "6"}).ok());
  Result<std::vector<Tuple>> p = r.ProjectTuples({"C", "A"});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value()[0], Tuple::OfAtoms({"3", "1"}));
  EXPECT_EQ(p.value()[1], Tuple::OfAtoms({"6", "4"}));
  EXPECT_FALSE(r.ProjectTuples({"A", "Z"}).ok());
}

TEST(RelationTest, CanonicalSortsColumnsAndTuples) {
  Relation r1 = MakeRel("R", {"B", "A"});
  ASSERT_TRUE(r1.AddRow({"2", "1"}).ok());
  ASSERT_TRUE(r1.AddRow({"4", "3"}).ok());
  Relation r2 = MakeRel("R", {"A", "B"});
  ASSERT_TRUE(r2.AddRow({"3", "4"}).ok());
  ASSERT_TRUE(r2.AddRow({"1", "2"}).ok());
  EXPECT_TRUE(r1.ContentsEqual(r2));
  EXPECT_EQ(r1.CanonicalKey(), r2.CanonicalKey());
}

TEST(RelationTest, CanonicalKeyDistinguishesContents) {
  Relation r1 = MakeRel("R", {"A"});
  ASSERT_TRUE(r1.AddRow({"1"}).ok());
  Relation r2 = MakeRel("R", {"A"});
  ASSERT_TRUE(r2.AddRow({"2"}).ok());
  EXPECT_NE(r1.CanonicalKey(), r2.CanonicalKey());
  Relation r3 = MakeRel("S", {"A"});
  ASSERT_TRUE(r3.AddRow({"1"}).ok());
  EXPECT_NE(r1.CanonicalKey(), r3.CanonicalKey());
}

TEST(RelationTest, CanonicalKeyNullVsAtNullString) {
  // A null cell must not collide with the literal atom "@null".
  Relation r1 = MakeRel("R", {"A"});
  ASSERT_TRUE(r1.AddTuple(Tuple(std::vector<Value>{Value::Null()})).ok());
  Relation r2 = MakeRel("R", {"A"});
  ASSERT_TRUE(r2.AddRow({"@null"}).ok());
  EXPECT_NE(r1.CanonicalKey(), r2.CanonicalKey());
}

TEST(RelationTest, CanonicalKeyBagSemantics) {
  // Duplicate tuples are preserved in the canonical form.
  Relation r1 = MakeRel("R", {"A"});
  ASSERT_TRUE(r1.AddRow({"1"}).ok());
  ASSERT_TRUE(r1.AddRow({"1"}).ok());
  Relation r2 = MakeRel("R", {"A"});
  ASSERT_TRUE(r2.AddRow({"1"}).ok());
  EXPECT_NE(r1.CanonicalKey(), r2.CanonicalKey());
}

// ---------------------------------------------------------------------------
// Database
// ---------------------------------------------------------------------------

TEST(DatabaseTest, AddAndGetRelation) {
  Database db;
  ASSERT_TRUE(db.AddRelation(MakeRel("R", {"A"})).ok());
  EXPECT_TRUE(db.HasRelation("R"));
  EXPECT_FALSE(db.HasRelation("S"));
  Result<const Relation*> r = db.GetRelation("R");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->name(), "R");
  EXPECT_FALSE(db.GetRelation("S").ok());
}

TEST(DatabaseTest, AddDuplicateFails) {
  Database db;
  ASSERT_TRUE(db.AddRelation(MakeRel("R", {"A"})).ok());
  EXPECT_EQ(db.AddRelation(MakeRel("R", {"B"})).code(),
            StatusCode::kAlreadyExists);
}

TEST(DatabaseTest, PutRelationReplaces) {
  Database db;
  ASSERT_TRUE(db.AddRelation(MakeRel("R", {"A"})).ok());
  db.PutRelation(MakeRel("R", {"B"}));
  Result<const Relation*> r = db.GetRelation("R");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE((*r)->HasAttribute("B"));
}

TEST(DatabaseTest, RemoveRelation) {
  Database db;
  ASSERT_TRUE(db.AddRelation(MakeRel("R", {"A"})).ok());
  ASSERT_TRUE(db.RemoveRelation("R").ok());
  EXPECT_FALSE(db.HasRelation("R"));
  EXPECT_EQ(db.RemoveRelation("R").code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, RenameRelation) {
  Database db;
  ASSERT_TRUE(db.AddRelation(MakeRel("R", {"A"})).ok());
  ASSERT_TRUE(db.AddRelation(MakeRel("S", {"A"})).ok());
  EXPECT_EQ(db.RenameRelation("R", "S").code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(db.RenameRelation("R", "T").ok());
  EXPECT_TRUE(db.HasRelation("T"));
  Result<const Relation*> t = db.GetRelation("T");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->name(), "T");  // relation's own name updated
  EXPECT_EQ(db.RenameRelation("R", "U").code(), StatusCode::kNotFound);
}

TEST(DatabaseTest, RelationNamesSorted) {
  Database db;
  ASSERT_TRUE(db.AddRelation(MakeRel("Zeta", {"A"})).ok());
  ASSERT_TRUE(db.AddRelation(MakeRel("Alpha", {"A"})).ok());
  EXPECT_EQ(db.RelationNames(), (std::vector<std::string>{"Alpha", "Zeta"}));
}

TEST(DatabaseTest, TupleCount) {
  Database db;
  Relation r = MakeRel("R", {"A"});
  ASSERT_TRUE(r.AddRow({"1"}).ok());
  ASSERT_TRUE(r.AddRow({"2"}).ok());
  ASSERT_TRUE(db.AddRelation(std::move(r)).ok());
  ASSERT_TRUE(db.AddRelation(MakeRel("S", {"B"})).ok());
  EXPECT_EQ(db.TupleCount(), 2u);
}

TEST(DatabaseTest, FingerprintStableAndContentSensitive) {
  Database db1;
  ASSERT_TRUE(db1.AddRelation(MakeRel("R", {"A", "B"})).ok());
  Database db2;
  ASSERT_TRUE(db2.AddRelation(MakeRel("R", {"B", "A"})).ok());
  EXPECT_EQ(db1.Fingerprint(), db2.Fingerprint());  // column order irrelevant
  Database db3;
  ASSERT_TRUE(db3.AddRelation(MakeRel("R", {"A", "C"})).ok());
  EXPECT_NE(db1.Fingerprint(), db3.Fingerprint());
}

// ---------------------------------------------------------------------------
// Containment (the goal test)
// ---------------------------------------------------------------------------

Database OneRelation(const char* name, std::vector<std::string> attrs,
                     std::vector<std::vector<std::string>> rows) {
  Database db;
  Relation r = MakeRel(name, std::move(attrs));
  for (auto& row : rows) EXPECT_TRUE(r.AddRow(row).ok());
  EXPECT_TRUE(db.AddRelation(std::move(r)).ok());
  return db;
}

TEST(ContainmentTest, IdenticalContains) {
  Database db = OneRelation("R", {"A", "B"}, {{"1", "2"}});
  EXPECT_TRUE(db.Contains(db));
}

TEST(ContainmentTest, ExtraAttributesAllowed) {
  Database big = OneRelation("R", {"A", "B", "C"}, {{"1", "2", "3"}});
  Database small = OneRelation("R", {"B"}, {{"2"}});
  EXPECT_TRUE(big.Contains(small));
  EXPECT_FALSE(small.Contains(big));
}

TEST(ContainmentTest, ExtraTuplesAllowed) {
  Database big = OneRelation("R", {"A"}, {{"1"}, {"2"}});
  Database small = OneRelation("R", {"A"}, {{"2"}});
  EXPECT_TRUE(big.Contains(small));
  EXPECT_FALSE(small.Contains(big));
}

TEST(ContainmentTest, ExtraRelationsAllowed) {
  Database big = OneRelation("R", {"A"}, {{"1"}});
  ASSERT_TRUE(big.AddRelation(MakeRel("Junk", {"X"})).ok());
  Database small = OneRelation("R", {"A"}, {{"1"}});
  EXPECT_TRUE(big.Contains(small));
}

TEST(ContainmentTest, MissingRelationFails) {
  Database state = OneRelation("R", {"A"}, {{"1"}});
  Database target = OneRelation("S", {"A"}, {{"1"}});
  EXPECT_FALSE(state.Contains(target));
}

TEST(ContainmentTest, ValueMismatchFails) {
  Database state = OneRelation("R", {"A", "B"}, {{"1", "2"}});
  Database target = OneRelation("R", {"A", "B"}, {{"2", "1"}});
  EXPECT_FALSE(state.Contains(target));
}

TEST(ContainmentTest, TransposedColumnsFail) {
  // All symbols present but in the wrong columns: not contained.
  Database state = OneRelation("R", {"A", "B"}, {{"x", "y"}});
  Database target = OneRelation("R", {"B", "A"}, {{"x", "y"}});
  EXPECT_FALSE(state.Contains(target));
}

TEST(ContainmentTest, ProjectionAcrossTuples) {
  // Each target tuple must come from a single state tuple, not be stitched
  // from several.
  Database state = OneRelation("R", {"A", "B"}, {{"1", "x"}, {"2", "y"}});
  Database target = OneRelation("R", {"A", "B"}, {{"1", "y"}});
  EXPECT_FALSE(state.Contains(target));
}

TEST(ContainmentTest, NullsMustMatch) {
  Database state = OneRelation("R", {"A", "B"}, {});
  Relation* rel = state.GetMutableRelation("R").value();
  ASSERT_TRUE(
      rel->AddTuple(Tuple(std::vector<Value>{Value("1"), Value::Null()}))
          .ok());
  Database target_null = OneRelation("R", {"A", "B"}, {});
  Relation* trel = target_null.GetMutableRelation("R").value();
  ASSERT_TRUE(
      trel->AddTuple(Tuple(std::vector<Value>{Value("1"), Value::Null()}))
          .ok());
  EXPECT_TRUE(state.Contains(target_null));
  Database target_atom = OneRelation("R", {"A", "B"}, {{"1", "2"}});
  EXPECT_FALSE(state.Contains(target_atom));
}

TEST(ContainmentTest, EmptyTargetAlwaysContained) {
  Database state;
  Database empty;
  EXPECT_TRUE(state.Contains(empty));
  state = OneRelation("R", {"A"}, {{"1"}});
  EXPECT_TRUE(state.Contains(empty));
}

TEST(ContainmentTest, EmptyTargetRelationNeedsNameAndAttrs) {
  Database state = OneRelation("R", {"A"}, {{"1"}});
  Database target = OneRelation("R", {"A"}, {});
  EXPECT_TRUE(state.Contains(target));
  Database target2 = OneRelation("R", {"Z"}, {});
  EXPECT_FALSE(state.Contains(target2));
}

// ---------------------------------------------------------------------------
// Database::Validate — the integrity gate for every .tdb/checkpoint load
// ---------------------------------------------------------------------------

TEST(DatabaseValidateTest, AcceptsWellFormedDatabase) {
  Database db = OneRelation("R", {"A", "B"}, {{"1", "2"}, {"3", "4"}});
  EXPECT_TRUE(db.AddRelation(MakeRel("S", {"X"})).ok());
  EXPECT_TRUE(db.Validate().ok());
  EXPECT_TRUE(Database().Validate().ok());
}

TEST(DatabaseValidateTest, AcceptsDecodableTnfClaim) {
  Database db = OneRelation("TNF", {"TID", "REL", "ATT", "VALUE"},
                            {{"t1", "R", "A", "x"},
                             {"t1", "R", "B", "y"}});
  EXPECT_TRUE(db.Validate().ok());
}

TEST(DatabaseValidateTest, RejectsUndecodableTnfClaim) {
  // A TID repeating an attribute cannot come from any real encoding;
  // Validate must surface the decode failure instead of letting the
  // corrupt claim flow into search.
  Database db = OneRelation("TNF", {"TID", "REL", "ATT", "VALUE"},
                            {{"t1", "R", "A", "x"},
                             {"t1", "R", "A", "y"}});
  Status st = db.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.ToString().find("claims TNF"), std::string::npos);
}

TEST(DatabaseValidateTest, SameRowsUnderAnotherNameAreFine) {
  // The TNF well-formedness check applies only to relations claiming the
  // reserved name + schema; the identical rows elsewhere are plain data.
  Database db = OneRelation("LOG", {"TID", "REL", "ATT", "VALUE"},
                            {{"t1", "R", "A", "x"},
                             {"t1", "R", "A", "y"}});
  EXPECT_TRUE(db.Validate().ok());
}

}  // namespace
}  // namespace tupelo
