// Property-based tests: seeded random generators drive invariants across
// the relational substrate, the operator algebra, and end-to-end mapping
// discovery.

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include "core/tupelo.h"
#include "fira/builtin_functions.h"
#include "fira/optimizer.h"
#include "fira/parser.h"
#include "fira/executor.h"
#include "heuristics/heuristic_factory.h"
#include "heuristics/levenshtein.h"
#include "relational/io.h"
#include "relational/tnf.h"

namespace tupelo {
namespace {

using Rng = std::mt19937_64;

std::string RandomAtom(Rng& rng) {
  static const char* kPool[] = {"a",  "b",   "cc",  "d1", "e 2", "f\"g",
                                "hh", "i,j", "k\n", "xyz", "0",  "null"};
  std::uniform_int_distribution<size_t> pick(0, std::size(kPool) - 1);
  return kPool[pick(rng)];
}

std::string RandomName(Rng& rng, const char* prefix) {
  std::uniform_int_distribution<int> pick(0, 999);
  return std::string(prefix) + std::to_string(pick(rng));
}

// Fills `out` with a random database: 1-3 relations, 1-4 attributes, 0-4
// tuples, and a sprinkling of nulls. (Out-parameter so ASSERTs work.)
void RandomDatabase(Rng& rng, Database* out) {
  Database db;
  std::uniform_int_distribution<int> nrels(1, 3);
  std::uniform_int_distribution<int> nattrs(1, 4);
  std::uniform_int_distribution<int> ntuples(0, 4);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  int rels = nrels(rng);
  for (int r = 0; r < rels; ++r) {
    std::string name = RandomName(rng, "Rel");
    if (db.HasRelation(name)) continue;
    int arity = nattrs(rng);
    std::vector<std::string> attrs;
    for (int a = 0; a < arity; ++a) {
      std::string attr = RandomName(rng, "col");
      if (std::find(attrs.begin(), attrs.end(), attr) == attrs.end()) {
        attrs.push_back(attr);
      }
    }
    Result<Relation> rel = Relation::Create(name, attrs);
    ASSERT_TRUE(rel.ok()) << rel.status();
    int rows = ntuples(rng);
    for (int t = 0; t < rows; ++t) {
      std::vector<Value> vs;
      for (size_t a = 0; a < attrs.size(); ++a) {
        vs.push_back(coin(rng) < 0.2 ? Value::Null()
                                     : Value(RandomAtom(rng)));
      }
      ASSERT_TRUE(rel->AddTuple(Tuple(std::move(vs))).ok());
    }
    ASSERT_TRUE(db.AddRelation(std::move(rel).value()).ok());
  }
  *out = std::move(db);
}

class SeededProperty : public testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89,
                                         144, 233));

TEST_P(SeededProperty, TdbRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 5; ++i) {
    Database db;
    RandomDatabase(rng, &db);
    Result<Database> back = ParseTdb(WriteTdb(db));
    ASSERT_TRUE(back.ok()) << back.status() << "\n" << WriteTdb(db);
    EXPECT_TRUE(back->ContentsEqual(db));
  }
}

TEST_P(SeededProperty, TnfRoundTripForNonEmptyRelations) {
  Rng rng(GetParam() ^ 0xfeed);
  for (int i = 0; i < 5; ++i) {
    Database db;
    RandomDatabase(rng, &db);
    // TNF cannot represent empty relations; drop them first.
    Database trimmed;
    for (const auto& [name, rel] : db.relations()) {
      if (!rel->empty()) trimmed.PutRelation(rel);
    }
    Result<Database> back = DecodeTnf(EncodeTnf(trimmed));
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_TRUE(back->ContentsEqual(trimmed));
  }
}

TEST_P(SeededProperty, CanonicalKeyInvariantUnderPresentationOrder) {
  Rng rng(GetParam() ^ 0xc0ffee);
  Database db;
  RandomDatabase(rng, &db);
  for (const auto& [name, relp] : db.relations()) {
    const Relation& rel = *relp;
    if (rel.arity() < 2) continue;
    // Permute columns: rebuild with attributes reversed.
    std::vector<std::string> attrs = rel.attributes();
    std::reverse(attrs.begin(), attrs.end());
    Result<Relation> permuted = Relation::Create(name, attrs);
    ASSERT_TRUE(permuted.ok());
    std::vector<Tuple> tuples = rel.tuples();
    std::reverse(tuples.begin(), tuples.end());  // shuffle tuple order too
    for (const Tuple& t : tuples) {
      std::vector<Value> vs = t.values();
      std::reverse(vs.begin(), vs.end());
      ASSERT_TRUE(permuted->AddTuple(Tuple(std::move(vs))).ok());
    }
    EXPECT_TRUE(rel.ContentsEqual(*permuted)) << name;
  }
}

TEST_P(SeededProperty, ExecutorNeverMutatesInput) {
  Rng rng(GetParam() ^ 0xdead);
  Database db;
  RandomDatabase(rng, &db);
  std::string before = db.CanonicalKey();
  // Try a batch of arbitrary ops (most will fail; none may mutate input).
  std::vector<Op> ops;
  for (const auto& [name, relp] : db.relations()) {
    const Relation& rel = *relp;
    ops.push_back(DemoteOp{name});
    if (!rel.attributes().empty()) {
      const std::string& a = rel.attributes()[0];
      ops.push_back(DropOp{name, a});
      ops.push_back(MergeOp{name, a});
      ops.push_back(PartitionOp{name, a});
      ops.push_back(PromoteOp{name, a, rel.attributes().back()});
      ops.push_back(RenameAttrOp{name, a, "renamed_" + a});
      ops.push_back(DereferenceOp{name, a, "deref_out"});
    }
    ops.push_back(RenameRelOp{name, name + "_x"});
  }
  for (const Op& op : ops) {
    Result<Database> out = ApplyOp(op, db, nullptr);
    EXPECT_EQ(db.CanonicalKey(), before) << OpToScript(op);
    if (out.ok()) {
      // Fingerprint agrees with canonical-key equality.
      EXPECT_EQ(out->Fingerprint() == db.Fingerprint(),
                out->CanonicalKey() == db.CanonicalKey());
    }
  }
}

TEST_P(SeededProperty, HeuristicsNonNegativeAndZeroAtTarget) {
  Rng rng(GetParam() ^ 0xbeef);
  Database target;
  RandomDatabase(rng, &target);
  Database other;
  RandomDatabase(rng, &other);
  bool target_has_tuples = target.TupleCount() > 0;
  for (HeuristicKind kind : AllHeuristicKinds()) {
    auto h = MakeHeuristic(kind, target, SearchAlgorithm::kRbfs);
    ASSERT_NE(h, nullptr);
    EXPECT_GE(h->Estimate(other), 0) << h->name();
    if (kind == HeuristicKind::kH2) {
      // h2 can be nonzero at the target when a symbol plays two roles.
      continue;
    }
    if ((kind == HeuristicKind::kCosine ||
         kind == HeuristicKind::kEuclideanNorm) &&
        !target_has_tuples) {
      // The tuple-less target has a zero term vector; cosine similarity
      // to the zero vector is defined as 0, so these are k, not 0.
      continue;
    }
    EXPECT_EQ(h->Estimate(target), 0) << h->name();
  }
}

// Operator algebra properties on random databases.
TEST_P(SeededProperty, DemoteAfterPromoteContainsOriginal) {
  // ↓(↑A_B(R)) ⊇ R: promotion adds columns, demotion unpivots; the
  // original tuples remain recoverable by projection.
  Rng rng(GetParam() ^ 0x1234);
  Database db;
  RandomDatabase(rng, &db);
  for (const auto& [name, relp] : db.relations()) {
    const Relation& rel = *relp;
    if (rel.arity() < 2 || rel.empty()) continue;
    PromoteOp promote{name, rel.attributes()[0], rel.attributes()[1]};
    Result<Database> promoted = ApplyOp(promote, db, nullptr);
    if (!promoted.ok()) continue;  // e.g. column-name collision
    Result<Database> demoted = ApplyOp(DemoteOp{name}, *promoted, nullptr);
    if (!demoted.ok()) continue;
    Database original_only;
    original_only.PutRelation(rel);
    EXPECT_TRUE(demoted->Contains(original_only)) << name;
  }
}

TEST_P(SeededProperty, MergeIsIdempotent) {
  Rng rng(GetParam() ^ 0x4321);
  Database db;
  RandomDatabase(rng, &db);
  for (const auto& [name, relp] : db.relations()) {
    const Relation& rel = *relp;
    if (rel.arity() == 0) continue;
    MergeOp merge{name, rel.attributes()[0]};
    Result<Database> once = ApplyOp(merge, db, nullptr);
    ASSERT_TRUE(once.ok()) << once.status();
    Result<Database> twice = ApplyOp(merge, *once, nullptr);
    ASSERT_TRUE(twice.ok()) << twice.status();
    EXPECT_TRUE(once->ContentsEqual(*twice)) << name;
  }
}

TEST_P(SeededProperty, PartitionsCoverNonNullKeyedTuples) {
  Rng rng(GetParam() ^ 0x9999);
  Database db;
  RandomDatabase(rng, &db);
  const auto& [name, relp] = *db.relations().begin();
  const Relation& rel = *relp;
  if (rel.arity() == 0) return;
  const std::string& attr = rel.attributes()[0];
  Result<Database> out = ApplyOp(PartitionOp{name, attr}, db, nullptr);
  if (!out.ok()) return;  // name collision with an existing relation
  size_t idx = *rel.AttributeIndex(attr);
  size_t covered = 0;
  for (const auto& [pname, part] : out->relations()) {
    if (pname == name || db.HasRelation(pname)) continue;
    covered += part->size();
    // Every tuple in the partition keys exactly its relation's name.
    for (const Tuple& t : part->tuples()) {
      ASSERT_FALSE(t[idx].is_null());
      EXPECT_EQ(t[idx].atom(), pname);
    }
  }
  size_t non_null = 0;
  for (const Tuple& t : rel.tuples()) {
    if (!t[idx].is_null()) ++non_null;
  }
  EXPECT_EQ(covered, non_null) << name;
}

TEST_P(SeededProperty, RenameIsInvertible) {
  Rng rng(GetParam() ^ 0x7777);
  Database db;
  RandomDatabase(rng, &db);
  const auto& [name, relp] = *db.relations().begin();
  const Relation& rel = *relp;
  if (rel.arity() == 0) return;
  const std::string& attr = rel.attributes()[0];
  Result<Database> there =
      ApplyOp(RenameAttrOp{name, attr, "tmp_xyz"}, db, nullptr);
  ASSERT_TRUE(there.ok()) << there.status();
  Result<Database> back =
      ApplyOp(RenameAttrOp{name, "tmp_xyz", attr}, *there, nullptr);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(back->ContentsEqual(db));
}

// Parser robustness: random byte soup and random mutations of valid
// inputs must produce a clean Status, never a crash or hang.
TEST_P(SeededProperty, ParsersSurviveGarbage) {
  Rng rng(GetParam() ^ 0xf422);
  std::uniform_int_distribution<int> len(0, 80);
  std::uniform_int_distribution<int> byte(0, 255);
  const std::string valid_tdb = "relation R (A, B) {\n  (1, null)\n}\n";
  const std::string valid_expr = "promote(R, A, B)\ndrop(R, A)\n";

  for (int i = 0; i < 20; ++i) {
    // Pure garbage.
    std::string garbage;
    int n = len(rng);
    for (int j = 0; j < n; ++j) {
      garbage += static_cast<char>(byte(rng));
    }
    (void)ParseTdb(garbage);
    (void)ParseExpression(garbage);

    // Mutated valid inputs (single byte flipped / truncated).
    for (const std::string& base : {valid_tdb, valid_expr}) {
      std::string mutated = base;
      if (!mutated.empty()) {
        std::uniform_int_distribution<size_t> pos(0, mutated.size() - 1);
        mutated[pos(rng)] = static_cast<char>(byte(rng));
        (void)ParseTdb(mutated);
        (void)ParseExpression(mutated);
        (void)ParseTdb(mutated.substr(0, pos(rng)));
        (void)ParseExpression(mutated.substr(0, pos(rng)));
      }
    }
  }
  SUCCEED();  // not crashing is the property
}

// Brute-force recursive Levenshtein for cross-checking the DP.
size_t SlowLevenshtein(std::string_view a, std::string_view b) {
  if (a.empty()) return b.size();
  if (b.empty()) return a.size();
  size_t cost = a[0] == b[0] ? 0 : 1;
  return std::min({SlowLevenshtein(a.substr(1), b) + 1,
                   SlowLevenshtein(a, b.substr(1)) + 1,
                   SlowLevenshtein(a.substr(1), b.substr(1)) + cost});
}

TEST_P(SeededProperty, LevenshteinMatchesBruteForce) {
  Rng rng(GetParam() ^ 0xabcd);
  std::uniform_int_distribution<int> len(0, 6);
  std::uniform_int_distribution<int> ch(0, 2);  // small alphabet: collisions
  for (int i = 0; i < 10; ++i) {
    std::string a, b;
    int la = len(rng);
    int lb = len(rng);
    for (int j = 0; j < la; ++j) a += static_cast<char>('a' + ch(rng));
    for (int j = 0; j < lb; ++j) b += static_cast<char>('a' + ch(rng));
    EXPECT_EQ(LevenshteinDistance(a, b), SlowLevenshtein(a, b))
        << a << " vs " << b;
  }
}

// Optimizer soundness: build random expressions of renames/drops/λ that
// execute successfully on a generated source, then check Simplify
// preserves the result exactly.
TEST_P(SeededProperty, SimplifyPreservesSemantics) {
  Rng rng(GetParam() ^ 0x0b71);
  FunctionRegistry registry;
  ASSERT_TRUE(RegisterBuiltinFunctions(&registry).ok());

  // Fixed well-behaved source.
  Result<Relation> rel =
      Relation::Create("R", {"a1", "a2", "a3", "n1", "n2"});
  ASSERT_TRUE(rel.ok());
  ASSERT_TRUE(rel->AddRow({"x", "y", "z", "10", "20"}).ok());
  ASSERT_TRUE(rel->AddRow({"p", "q", "r", "30", "40"}).ok());
  Database source;
  ASSERT_TRUE(source.AddRelation(std::move(rel).value()).ok());

  std::uniform_int_distribution<int> len(2, 10);
  std::uniform_int_distribution<int> kind(0, 3);
  std::uniform_int_distribution<int> counter(0, 9999);

  for (int trial = 0; trial < 4; ++trial) {
    // Grow an expression by appending random ops that remain executable.
    MappingExpression expr;
    Database state = source;
    int want = len(rng);
    int guard = 0;
    while (expr.size() < static_cast<size_t>(want) && guard++ < 60) {
      const Relation* r = state.relations().begin()->second->arity() > 0
                              ? state.relations().begin()->second.get()
                              : nullptr;
      if (r == nullptr || r->arity() == 0) break;
      std::uniform_int_distribution<size_t> attr_pick(0, r->arity() - 1);
      Op op = DropOp{r->name(), r->attributes()[attr_pick(rng)]};
      switch (kind(rng)) {
        case 0:
          op = RenameAttrOp{r->name(), r->attributes()[attr_pick(rng)],
                            "c" + std::to_string(counter(rng))};
          break;
        case 1:
          op = DropOp{r->name(), r->attributes()[attr_pick(rng)]};
          break;
        case 2:
          op = RenameRelOp{r->name(), "T" + std::to_string(counter(rng))};
          break;
        case 3:
          op = ApplyFunctionOp{r->name(),
                               "concat",
                               {r->attributes()[attr_pick(rng)],
                                r->attributes()[attr_pick(rng)]},
                               "c" + std::to_string(counter(rng))};
          break;
      }
      Result<Database> next = ApplyOp(op, state, &registry);
      if (!next.ok()) continue;
      expr.Append(std::move(op));
      state = std::move(next).value();
    }

    MappingExpression simplified = Simplify(expr);
    EXPECT_LE(simplified.size(), expr.size());
    Result<Database> optimized = simplified.Apply(source, &registry);
    ASSERT_TRUE(optimized.ok())
        << optimized.status() << "\noriginal:\n"
        << expr.ToScript() << "simplified:\n"
        << simplified.ToScript();
    EXPECT_TRUE(optimized->ContentsEqual(state))
        << "original:\n"
        << expr.ToScript() << "simplified:\n"
        << simplified.ToScript();
  }
}

// Round-trip discovery: scramble a random database with renames/drops,
// then verify TUPELO rediscovers a mapping back to the original.
TEST_P(SeededProperty, DiscoveryRecoversScrambledSchema) {
  Rng rng(GetParam() ^ 0x5eed);
  // Build a well-behaved source: one relation, distinct values.
  std::uniform_int_distribution<int> nattrs(2, 4);
  int arity = nattrs(rng);
  std::vector<std::string> attrs;
  std::vector<std::string> row;
  for (int i = 0; i < arity; ++i) {
    attrs.push_back("src" + std::to_string(i));
    row.push_back("val" + std::to_string(i));
  }
  Result<Relation> rel = Relation::Create("Source", attrs);
  ASSERT_TRUE(rel.ok());
  ASSERT_TRUE(rel->AddRow(row).ok());
  Database source;
  ASSERT_TRUE(source.AddRelation(std::move(rel).value()).ok());

  // Scramble: rename a random subset of attributes and maybe the relation.
  Database target = source;
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  int expected_depth = 0;
  for (int i = 0; i < arity; ++i) {
    if (coin(rng) < 0.6) {
      Result<Database> next =
          ApplyOp(RenameAttrOp{"Source", "src" + std::to_string(i),
                               "tgt" + std::to_string(i)},
                  target, nullptr);
      ASSERT_TRUE(next.ok());
      target = std::move(next).value();
      ++expected_depth;
    }
  }
  if (coin(rng) < 0.5) {
    Result<Database> next =
        ApplyOp(RenameRelOp{"Source", "Target"}, target, nullptr);
    ASSERT_TRUE(next.ok());
    target = std::move(next).value();
    ++expected_depth;
  }

  TupeloOptions options;
  options.limits.max_states = 500000;
  Result<TupeloResult> r = DiscoverMapping(source, target, options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->found);
  EXPECT_TRUE(r->verified);
  EXPECT_EQ(r->stats.solution_cost, expected_depth);
}

}  // namespace
}  // namespace tupelo
