#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/postprocess.h"
#include "core/tupelo.h"
#include "relational/io.h"
#include "workloads/flights.h"

namespace tupelo {
namespace {

Database Tdb(const char* text) {
  Result<Database> db = ParseTdb(text);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

TEST(ConformTest, DropsExtraRelations) {
  Database mapped = Tdb(
      "relation Keep (A) { (1) }\n"
      "relation Junk (X) { (9) }");
  Database target = Tdb("relation Keep (A) { }");
  Result<Database> out = ConformToSchema(mapped, target);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->HasRelation("Keep"));
  EXPECT_FALSE(out->HasRelation("Junk"));
}

TEST(ConformTest, ProjectsToTargetAttributesInTargetOrder) {
  Database mapped = Tdb("relation R (A, B, C) { (1, 2, 3) }");
  Database target = Tdb("relation R (C, A) { }");
  Result<Database> out = ConformToSchema(mapped, target);
  ASSERT_TRUE(out.ok());
  const Relation* r = out->GetRelation("R").value();
  EXPECT_EQ(r->attributes(), (std::vector<std::string>{"C", "A"}));
  EXPECT_EQ(r->tuples()[0], Tuple::OfAtoms({"3", "1"}));
}

TEST(ConformTest, TargetTuplesAreIgnoredSchemaOnly) {
  Database mapped = Tdb("relation R (A) { (1) }");
  Database target = Tdb("relation R (A) { (totally) (different) }");
  Result<Database> out = ConformToSchema(mapped, target);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->GetRelation("R").value()->size(), 1u);
}

TEST(ConformTest, DropsNullTuplesByDefault) {
  Database mapped = Tdb("relation R (A, B) { (1, 2) (3, null) }");
  Database target = Tdb("relation R (A, B) { }");
  Result<Database> out = ConformToSchema(mapped, target);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->GetRelation("R").value()->size(), 1u);
}

TEST(ConformTest, NullDropConsidersOnlyTargetAttributes) {
  // The null sits in a column the target does not keep.
  Database mapped = Tdb("relation R (A, B) { (1, null) }");
  Database target = Tdb("relation R (A) { }");
  Result<Database> out = ConformToSchema(mapped, target);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->GetRelation("R").value()->size(), 1u);
}

TEST(ConformTest, KeepNullsWhenDisabled) {
  Database mapped = Tdb("relation R (A) { (null) (1) }");
  Database target = Tdb("relation R (A) { }");
  ConformOptions options;
  options.drop_null_tuples = false;
  options.deduplicate = false;
  Result<Database> out = ConformToSchema(mapped, target, options);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->GetRelation("R").value()->size(), 2u);
}

TEST(ConformTest, DeduplicatesProjectionDuplicates) {
  Database mapped = Tdb("relation R (A, B) { (1, x) (1, y) }");
  Database target = Tdb("relation R (A) { }");
  Result<Database> out = ConformToSchema(mapped, target);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->GetRelation("R").value()->size(), 1u);
  ConformOptions keep;
  keep.deduplicate = false;
  Result<Database> bag = ConformToSchema(mapped, target, keep);
  ASSERT_TRUE(bag.ok());
  EXPECT_EQ(bag->GetRelation("R").value()->size(), 2u);
}

TEST(ConformTest, MissingTargetRelationFails) {
  Database mapped = Tdb("relation R (A) { (1) }");
  Database target = Tdb("relation S (A) { }");
  EXPECT_FALSE(ConformToSchema(mapped, target).ok());
}

TEST(ConformTest, MissingTargetAttributeFails) {
  Database mapped = Tdb("relation R (A) { (1) }");
  Database target = Tdb("relation R (A, Missing) { }");
  EXPECT_FALSE(ConformToSchema(mapped, target).ok());
}

TEST(ConformTest, EndToEndAfterDiscovery) {
  // Discover B -> A, execute, conform: the result is exactly FlightsA.
  TupeloOptions options;
  options.limits.max_states = 200000;
  Result<TupeloResult> r =
      DiscoverMapping(MakeFlightsB(), MakeFlightsA(), options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->found);
  Result<Database> mapped = r->mapping.Apply(MakeFlightsB());
  ASSERT_TRUE(mapped.ok());
  Result<Database> conformed = ConformToSchema(*mapped, MakeFlightsA());
  ASSERT_TRUE(conformed.ok()) << conformed.status();
  EXPECT_TRUE(conformed->ContentsEqual(MakeFlightsA()));
}

TEST(ConformTest, WideToFlatCleansDemoteResidue) {
  // A -> B via demote leaves junk rows (metadata pairs for Carrier/Fee);
  // containment tolerates them and conformance cannot remove them — it
  // only projects/dedups. Verify conformance keeps the true rows and that
  // the junk rows survive as data (the paper's external-criteria σ would
  // remove them).
  Database a = MakeFlightsA();
  MappingExpression expr;
  expr.Append(DemoteOp{"Flights"});
  expr.Append(RenameAttrOp{"Flights", "_att", "Route"});
  expr.Append(RenameAttrOp{"Flights", "_val", "Cost"});
  expr.Append(RenameAttrOp{"Flights", "AgentFee", "Fee"});
  Result<Database> mapped = expr.Apply(a);
  // The A schema has no AgentFee; fix the expression accordingly.
  MappingExpression expr2;
  expr2.Append(DemoteOp{"Flights"});
  expr2.Append(RenameAttrOp{"Flights", "_att", "Route"});
  expr2.Append(RenameAttrOp{"Flights", "_val", "Cost"});
  expr2.Append(RenameAttrOp{"Flights", "Fee", "AgentFee"});
  expr2.Append(RenameRelOp{"Flights", "Prices"});
  mapped = expr2.Apply(a);
  ASSERT_TRUE(mapped.ok()) << mapped.status();
  ASSERT_TRUE(mapped->Contains(MakeFlightsB()));
  Result<Database> conformed = ConformToSchema(*mapped, MakeFlightsB());
  ASSERT_TRUE(conformed.ok());
  // All true FlightsB tuples present...
  EXPECT_TRUE(conformed->Contains(MakeFlightsB()));
  // ...plus the metadata-pair residue rows (Route="Carrier" etc.).
  EXPECT_GT(conformed->GetRelation("Prices").value()->size(),
            MakeFlightsB().GetRelation("Prices").value()->size());
}

}  // namespace
}  // namespace tupelo
