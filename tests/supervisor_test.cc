// The self-healing runtime (runtime/supervisor.h): watchdog stall
// preemption, staged memory degradation, the poison-state quarantine,
// and the supervised Discover ladder end-to-end (docs/ROBUSTNESS.md,
// "Supervision contract").
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/tupelo.h"
#include "fira/executor.h"
#include "obs/metrics.h"
#include "relational/io.h"
#include "runtime/supervisor.h"
#include "search/search_types.h"

namespace tupelo {
namespace {

using runtime::PreemptReason;
using runtime::Supervisor;
using runtime::SupervisorConfig;
using runtime::WatchSpec;

Database Tdb(const char* text) {
  Result<Database> db = ParseTdb(text);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

// Spin-waits (with a generous ceiling) until `done` returns true. The
// watchdog runs on wall-clock ticks, so tests wait on observable effects
// rather than sleeping fixed amounts.
template <typename Done>
bool WaitFor(Done done, int64_t ceiling_millis = 5000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(ceiling_millis);
  while (!done()) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return true;
}

SupervisorConfig FastConfig() {
  SupervisorConfig config;
  config.enabled = true;
  config.tick_millis = 2;
  config.stall_window_millis = 30;
  config.max_rung_retries = 1;
  config.retry_backoff_millis = 2;
  return config;
}

// Installs/uninstalls the process-wide fault injector for a test scope.
struct ScopedInjector {
  explicit ScopedInjector(FaultInjector* injector) {
    SetFaultInjector(injector);
  }
  ~ScopedInjector() { SetFaultInjector(nullptr); }
};

// ---------------------------------------------------------------------------
// Supervisor unit behavior (no search attached)
// ---------------------------------------------------------------------------

TEST(SupervisorTest, SilentHeartbeatIsPreemptedWithinStallWindow) {
  Supervisor supervisor(FastConfig());
  HeartbeatSlot slot;  // never beats
  CancelToken preempt;
  WatchSpec spec;
  spec.heartbeat = &slot;
  spec.preempt = &preempt;
  int64_t id = supervisor.Watch(spec);
  ASSERT_GE(id, 0);

  EXPECT_TRUE(WaitFor([&] { return preempt.cancelled(); }));
  EXPECT_EQ(supervisor.preemption(id), PreemptReason::kStall);
  supervisor.Unwatch(id);
  EXPECT_EQ(supervisor.stall_preemptions(), 1u);
}

TEST(SupervisorTest, BeatingHeartbeatIsNeverPreempted) {
  Supervisor supervisor(FastConfig());
  HeartbeatSlot slot;
  CancelToken preempt;
  WatchSpec spec;
  spec.heartbeat = &slot;
  spec.preempt = &preempt;
  int64_t id = supervisor.Watch(spec);
  ASSERT_GE(id, 0);

  // Beat for ~5 stall windows; the watch must stay healthy throughout.
  auto end = std::chrono::steady_clock::now() +
             std::chrono::milliseconds(150);
  uint64_t states = 0;
  while (std::chrono::steady_clock::now() < end) {
    slot.Beat(++states, 0);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_FALSE(preempt.cancelled());
  EXPECT_EQ(supervisor.preemption(id), PreemptReason::kNone);
  supervisor.Unwatch(id);
  EXPECT_EQ(supervisor.stall_preemptions(), 0u);
}

TEST(SupervisorTest, MemoryPressureStagesReliefThenTrimThenPreempt) {
  SupervisorConfig config = FastConfig();
  config.stall_window_millis = 60000;  // isolate the memory ladder
  Supervisor supervisor(config);

  HeartbeatSlot slot;
  CancelToken preempt;
  std::atomic<uint32_t> pressure{0};
  std::atomic<int> reliefs{0};
  WatchSpec spec;
  spec.heartbeat = &slot;
  spec.preempt = &preempt;
  spec.max_memory_nodes = 100;
  spec.memory_relief = [&reliefs] { ++reliefs; };
  spec.width_pressure = &pressure;
  int64_t id = supervisor.Watch(spec);
  ASSERT_GE(id, 0);

  uint64_t states = 0;
  // Below the soft watermark: no intervention.
  slot.Beat(++states, 50);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(reliefs.load(), 0);

  // Soft watermark (70%): the relief callback runs, once.
  slot.Beat(++states, 75);
  EXPECT_TRUE(WaitFor([&] { return reliefs.load() == 1; }));
  EXPECT_EQ(pressure.load(), 0u);

  // Trim watermark (85%): width pressure rises.
  slot.Beat(++states, 90);
  EXPECT_TRUE(WaitFor([&] { return pressure.load() == 1; }));
  EXPECT_FALSE(preempt.cancelled());

  // Hard watermark (95%): the rung is preempted.
  slot.Beat(++states, 99);
  EXPECT_TRUE(WaitFor([&] { return preempt.cancelled(); }));
  EXPECT_EQ(supervisor.preemption(id), PreemptReason::kMemory);
  supervisor.Unwatch(id);

  EXPECT_EQ(supervisor.memory_reliefs(), 1u);
  EXPECT_EQ(supervisor.width_trims(), 1u);
  EXPECT_EQ(supervisor.memory_preemptions(), 1u);
  EXPECT_EQ(reliefs.load(), 1);  // stages fire at most once per watch
}

TEST(SupervisorTest, InvalidWatchSpecIsRejected) {
  Supervisor supervisor(FastConfig());
  EXPECT_EQ(supervisor.Watch(WatchSpec{}), -1);
  HeartbeatSlot slot;
  WatchSpec no_token;
  no_token.heartbeat = &slot;
  EXPECT_EQ(supervisor.Watch(no_token), -1);
}

TEST(SupervisorTest, UnwatchedIdReportsNoPreemption) {
  Supervisor supervisor(FastConfig());
  EXPECT_EQ(supervisor.preemption(42), PreemptReason::kNone);
}

// ---------------------------------------------------------------------------
// EffectiveBeamWidth / StateQuarantine / GuardedExpand units
// ---------------------------------------------------------------------------

TEST(SupervisorTest, EffectiveBeamWidthHalvesUnderPressure) {
  std::atomic<uint32_t> pressure{0};
  EXPECT_EQ(EffectiveBeamWidth(8, &pressure), 8u);
  pressure.store(1);
  EXPECT_EQ(EffectiveBeamWidth(8, &pressure), 4u);
  pressure.store(2);
  EXPECT_EQ(EffectiveBeamWidth(8, &pressure), 2u);
  pressure.store(5);
  EXPECT_EQ(EffectiveBeamWidth(8, &pressure), 1u);  // floor, never 0
  pressure.store(200);
  EXPECT_EQ(EffectiveBeamWidth(8, &pressure), 1u);
  EXPECT_EQ(EffectiveBeamWidth(8, nullptr), 8u);
}

TEST(SupervisorTest, QuarantineBoundsItsDenylist) {
  StateQuarantine quarantine(2);
  Fp128 a{1, 1}, b{2, 2}, c{3, 3};
  EXPECT_TRUE(quarantine.Add(a));
  EXPECT_FALSE(quarantine.Add(a));  // already quarantined
  EXPECT_TRUE(quarantine.Add(b));
  EXPECT_TRUE(quarantine.Add(c));  // evicts a (FIFO)
  EXPECT_EQ(quarantine.size(), 2u);
  EXPECT_FALSE(quarantine.Contains(a));
  EXPECT_TRUE(quarantine.Contains(b));
  EXPECT_TRUE(quarantine.Contains(c));
  EXPECT_EQ(quarantine.poisoned(), 3u);
}

// A minimal Problem duck type whose Expand throws on one poison state.
struct ThrowingProblem {
  struct SuccessorT {
    int action;
    int state;
  };
  int poison = 7;
  mutable int expands = 0;

  std::vector<SuccessorT> Expand(const int& state) const {
    ++expands;
    if (state == poison) throw std::runtime_error("poison");
    return {{1, state + 1}};
  }
  uint64_t StateKey(const int& state) const {
    return static_cast<uint64_t>(state);
  }
  Fp128 StateKey128(const int& state) const {
    return Fp128{static_cast<uint64_t>(state),
                 static_cast<uint64_t>(state) + 99};
  }
};

TEST(SupervisorTest, GuardedExpandQuarantinesThrowingState) {
  ThrowingProblem problem;
  StateQuarantine quarantine(16);

  // Healthy states pass through untouched.
  auto healthy = GuardedExpand(problem, 3, &quarantine);
  ASSERT_EQ(healthy.size(), 1u);
  EXPECT_EQ(healthy[0].state, 4);

  // The poison state's exception is absorbed and the state quarantined.
  auto poisoned = GuardedExpand(problem, 7, &quarantine);
  EXPECT_TRUE(poisoned.empty());
  EXPECT_EQ(quarantine.poisoned(), 1u);

  // A quarantined state is never re-expanded.
  int before = problem.expands;
  auto again = GuardedExpand(problem, 7, &quarantine);
  EXPECT_TRUE(again.empty());
  EXPECT_EQ(problem.expands, before);

  // Null quarantine degrades to a plain Expand call.
  auto plain = GuardedExpand(problem, 5, nullptr);
  ASSERT_EQ(plain.size(), 1u);
}

// ---------------------------------------------------------------------------
// Supervised Discover end-to-end
// ---------------------------------------------------------------------------

// The PR's deterministic acceptance scenario: a one-shot injected
// operator delay (~10x the stall window) wedges the first attempt; the
// watchdog preempts it within the window (kStalled, not kDeadline), the
// ladder grants one backed-off retry, and the retried rung — now
// fault-free, the injector's one shot spent — returns the verified
// mapping.
TEST(SupervisorTest, HungRungIsPreemptedRetriedAndRecovers) {
  // Two renames deep: the earliest goal visit is the third, and with
  // check_interval = 1 the guard polls on visits 1, 3, 5... — so the
  // preemption is observed before the goal test can win the race.
  Database source = Tdb("relation R (A, B) { (1, x) (2, y) }");
  Database target = Tdb("relation R (C, D) { (1, x) (2, y) }");
  Tupelo system(source, target);

  FaultInjector injector;
  ScopedInjector scoped(&injector);
  injector.ArmEveryNth("*", Status::Internal("wedged"), 2);
  injector.SetKind(FaultInjector::Kind::kDelay, 400);
  injector.SetMaxFires(1);

  TupeloOptions options;
  options.supervisor.enabled = true;
  options.supervisor.tick_millis = 5;
  options.supervisor.stall_window_millis = 40;
  options.supervisor.max_rung_retries = 1;
  options.supervisor.retry_backoff_millis = 5;
  // Poll the cancel token densely: the workload is tiny, so with the
  // default amortization (every 16 visits) the goal is reached before
  // the next poll and the preemption would go unobserved.
  options.limits.check_interval = 1;
  obs::MetricRegistry metrics;
  options.metrics = &metrics;

  Result<TupeloResult> r = system.Discover(options);
  ASSERT_TRUE(r.ok()) << r.status();

  EXPECT_TRUE(r->found);
  EXPECT_TRUE(r->verified);
  EXPECT_EQ(r->stop_reason, StopReason::kFound);
  EXPECT_EQ(r->stall_preemptions, 1u);
  EXPECT_EQ(r->rung_retries, 1u);
  // Two attempts of the same (single) rung: the stalled one, then the
  // clean retry.
  ASSERT_EQ(r->rungs.size(), 2u);
  EXPECT_EQ(r->rungs[0].stop, StopReason::kStalled);
  EXPECT_EQ(r->rungs[1].stop, StopReason::kFound);
  EXPECT_EQ(metrics.CounterValue("supervisor.stall_preemptions"), 1u);
  EXPECT_EQ(metrics.CounterValue("supervisor.rung_retries"), 1u);
}

// Retries exhausted: with max_rung_retries = 0 a stalled single-rung run
// surfaces kStalled as the final stop reason — and still carries the
// anytime partial mapping contract (partial_h set when anything was
// examined).
TEST(SupervisorTest, ExhaustedRetriesSurfaceStalledStop) {
  Database source = Tdb(
      "relation R (A0, A1, A2, A3, A4, A5) { (a, b, c, d, e, f) }");
  Database target = Tdb(
      "relation R (B0, B1, B2, B3, B4, B5, Z) { (a, b, c, d, e, f, zz) }");
  Tupelo system(source, target);

  FaultInjector injector;
  ScopedInjector scoped(&injector);
  // Every 40th operator execution wedges for 300 ms, indefinitely: every
  // attempt stalls eventually.
  injector.ArmEveryNth("*", Status::Internal("wedged"), 40);
  injector.SetKind(FaultInjector::Kind::kDelay, 300);

  TupeloOptions options;
  options.supervisor.enabled = true;
  options.supervisor.tick_millis = 5;
  options.supervisor.stall_window_millis = 40;
  options.supervisor.max_rung_retries = 0;
  options.limits.max_states = 200000;

  Result<TupeloResult> r = system.Discover(options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->found);
  EXPECT_EQ(r->stop_reason, StopReason::kStalled);
  EXPECT_TRUE(r->budget_exhausted);  // kStalled is a resource stop
  EXPECT_EQ(r->rung_retries, 0u);
  EXPECT_GE(r->stall_preemptions, 1u);
  EXPECT_GE(r->partial_h, 0);  // anytime contract survives preemption
}

// Poison states end-to-end: throwing operator faults under supervision
// must quarantine and finish cleanly, never crash.
TEST(SupervisorTest, ThrowingFaultsAreQuarantinedEndToEnd) {
  Database source = Tdb("relation R (A, B) { (1, x) (2, y) }");
  Database target = Tdb("relation R (C, B) { (1, x) (2, y) }");
  Tupelo system(source, target);

  FaultInjector injector;
  ScopedInjector scoped(&injector);
  injector.ArmEveryNth("*", Status::Internal("poison"), 3);
  injector.SetKind(FaultInjector::Kind::kThrow);

  TupeloOptions options;
  options.supervisor.enabled = true;
  options.limits.max_states = 50000;
  obs::MetricRegistry metrics;
  options.metrics = &metrics;

  Result<TupeloResult> r = system.Discover(options);
  ASSERT_TRUE(r.ok()) << r.status();
  // Whatever the outcome, it is clean: found+verified, or a conclusive /
  // budget stop. (With every 3rd operator throwing, whole expansions
  // vanish into the quarantine, so found is not guaranteed.)
  if (r->found && r->verified) {
    EXPECT_TRUE(r->verify_status.ok());
  }
  EXPECT_GT(r->states_quarantined, 0u);
  EXPECT_EQ(metrics.CounterValue("supervisor.states_quarantined"),
            r->states_quarantined);
}

// bad_alloc is absorbed the same way a runtime_error is.
TEST(SupervisorTest, BadAllocFaultsAreQuarantinedEndToEnd) {
  Database source = Tdb("relation R (A, B) { (1, x) }");
  Database target = Tdb("relation R (C, B) { (1, x) }");
  Tupelo system(source, target);

  FaultInjector injector;
  ScopedInjector scoped(&injector);
  injector.ArmEveryNth("*", Status::Internal("oom"), 4);
  injector.SetKind(FaultInjector::Kind::kBadAlloc);

  TupeloOptions options;
  options.supervisor.enabled = true;
  options.limits.max_states = 50000;

  Result<TupeloResult> r = system.Discover(options);
  ASSERT_TRUE(r.ok()) << r.status();
  if (r->found && r->verified) {
    EXPECT_TRUE(r->verify_status.ok());
  }
}

// Supervision off is the status quo: no watchdog, no retries, results
// bit-identical to an unsupervised run.
TEST(SupervisorTest, DisabledSupervisorChangesNothing) {
  Database source = Tdb("relation R (A, B) { (1, x) (2, y) }");
  Database target = Tdb("relation R (C, B) { (1, x) (2, y) }");
  Tupelo system(source, target);

  TupeloOptions plain;
  Result<TupeloResult> a = system.Discover(plain);
  ASSERT_TRUE(a.ok());

  TupeloOptions off;
  off.supervisor.enabled = false;
  off.supervisor.stall_window_millis = 1;  // would be lethal if active
  Result<TupeloResult> b = system.Discover(off);
  ASSERT_TRUE(b.ok());

  EXPECT_EQ(a->found, b->found);
  EXPECT_EQ(a->verified, b->verified);
  EXPECT_EQ(a->mapping.ToScript(), b->mapping.ToScript());
  EXPECT_EQ(b->stall_preemptions, 0u);
  EXPECT_EQ(b->rung_retries, 0u);
  EXPECT_EQ(b->states_quarantined, 0u);
}

// A healthy supervised run on a tractable pair: same mapping as the
// unsupervised run, zero interventions.
TEST(SupervisorTest, HealthySupervisedRunMatchesUnsupervised) {
  Database source = Tdb("relation R (A, B) { (1, x) (2, y) }");
  Database target = Tdb("relation R (C, B) { (1, x) (2, y) }");
  Tupelo system(source, target);

  TupeloOptions plain;
  Result<TupeloResult> a = system.Discover(plain);
  ASSERT_TRUE(a.ok());

  TupeloOptions sup;
  sup.supervisor.enabled = true;
  Result<TupeloResult> b = system.Discover(sup);
  ASSERT_TRUE(b.ok());

  EXPECT_EQ(a->found, b->found);
  EXPECT_EQ(a->mapping.ToScript(), b->mapping.ToScript());
  EXPECT_EQ(b->stall_preemptions, 0u);
  EXPECT_EQ(b->memory_reliefs, 0u);
  EXPECT_EQ(b->states_quarantined, 0u);
}

// Supervised beam under a parallel pool: the pool's per-task heartbeat
// keeps the watchdog fed and the result stays bit-identical to the
// sequential beam (the parallel-beam determinism contract).
TEST(SupervisorTest, SupervisedParallelBeamMatchesSequential) {
  Database source = Tdb("relation R (A, B) { (1, x) (2, y) }");
  Database target = Tdb("relation R (C, B) { (1, x) (2, y) }");
  Tupelo system(source, target);

  TupeloOptions seq;
  seq.algorithm = SearchAlgorithm::kBeam;
  seq.beam_width = 8;
  seq.supervisor.enabled = true;
  Result<TupeloResult> a = system.Discover(seq);
  ASSERT_TRUE(a.ok());

  TupeloOptions par = seq;
  par.threads = 4;
  Result<TupeloResult> b = system.Discover(par);
  ASSERT_TRUE(b.ok());

  EXPECT_EQ(a->found, b->found);
  EXPECT_EQ(a->mapping.ToScript(), b->mapping.ToScript());
  EXPECT_EQ(a->stats.states_examined, b->stats.states_examined);
}

}  // namespace
}  // namespace tupelo
