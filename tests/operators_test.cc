#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fira/builtin_functions.h"
#include "fira/executor.h"
#include "fira/operators.h"
#include "relational/io.h"
#include "workloads/flights.h"

namespace tupelo {
namespace {

Database Tdb(const char* text) {
  Result<Database> db = ParseTdb(text);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

Database MustApply(const Op& op, const Database& in,
                   const FunctionRegistry* reg = nullptr) {
  Result<Database> out = ApplyOp(op, in, reg);
  EXPECT_TRUE(out.ok()) << out.status();
  return std::move(out).value();
}

const Relation& Rel(const Database& db, const char* name) {
  Result<const Relation*> r = db.GetRelation(name);
  EXPECT_TRUE(r.ok()) << r.status();
  return **r;
}

// ---------------------------------------------------------------------------
// ↑ promote
// ---------------------------------------------------------------------------

TEST(PromoteTest, CreatesOneColumnPerDistinctValue) {
  Database db = Tdb("relation R (K, V) { (k1, 10) (k2, 20) (k1, 30) }");
  Database out = MustApply(PromoteOp{"R", "K", "V"}, db);
  const Relation& r = Rel(out, "R");
  EXPECT_EQ(r.attributes(), (std::vector<std::string>{"K", "V", "k1", "k2"}));
  // Each tuple carries its V value in its own K-named column, null elsewhere.
  EXPECT_EQ(r.tuples()[0][2], Value("10"));
  EXPECT_TRUE(r.tuples()[0][3].is_null());
  EXPECT_TRUE(r.tuples()[1][2].is_null());
  EXPECT_EQ(r.tuples()[1][3], Value("20"));
  EXPECT_EQ(r.tuples()[2][2], Value("30"));
}

TEST(PromoteTest, NullNameValueGetsNoColumn) {
  Database db = Tdb("relation R (K, V) { (null, 10) (k2, 20) }");
  Database out = MustApply(PromoteOp{"R", "K", "V"}, db);
  const Relation& r = Rel(out, "R");
  EXPECT_EQ(r.attributes(), (std::vector<std::string>{"K", "V", "k2"}));
  EXPECT_TRUE(r.tuples()[0][2].is_null());
}

TEST(PromoteTest, PaperExampleFlightsB) {
  // R1 := ↑Route_Cost(FlightsB): new columns ATL29, ORD17.
  Database out = MustApply(PromoteOp{"Prices", "Route", "Cost"},
                           MakeFlightsB());
  const Relation& r = Rel(out, "Prices");
  EXPECT_EQ(r.attributes(),
            (std::vector<std::string>{"Carrier", "Route", "Cost", "AgentFee",
                                      "ATL29", "ORD17"}));
  // (AirEast, ATL29, 100, 15) gains ATL29=100.
  EXPECT_EQ(r.tuples()[0][4], Value("100"));
  EXPECT_TRUE(r.tuples()[0][5].is_null());
}

TEST(PromoteTest, ErrorsOnMissingAttributes) {
  Database db = Tdb("relation R (K, V) { (k1, 10) }");
  EXPECT_FALSE(ApplyOp(PromoteOp{"R", "Z", "V"}, db).ok());
  EXPECT_FALSE(ApplyOp(PromoteOp{"R", "K", "Z"}, db).ok());
  EXPECT_FALSE(ApplyOp(PromoteOp{"Z", "K", "V"}, db).ok());
}

TEST(PromoteTest, ErrorsOnColumnNameCollision) {
  Database db = Tdb("relation R (K, V) { (V, 10) }");
  EXPECT_EQ(ApplyOp(PromoteOp{"R", "K", "V"}, db).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(PromoteTest, SelfPromoteAllowed) {
  // ↑A_A: column named by A's value holding A's value.
  Database db = Tdb("relation R (A) { (x) }");
  Database out = MustApply(PromoteOp{"R", "A", "A"}, db);
  const Relation& r = Rel(out, "R");
  EXPECT_EQ(r.attributes(), (std::vector<std::string>{"A", "x"}));
  EXPECT_EQ(r.tuples()[0][1], Value("x"));
}

// ---------------------------------------------------------------------------
// ↓ demote
// ---------------------------------------------------------------------------

TEST(DemoteTest, UnpivotsEveryAttribute) {
  Database db = Tdb("relation R (A, B) { (1, 2) }");
  Database out = MustApply(DemoteOp{"R"}, db);
  const Relation& r = Rel(out, "R");
  EXPECT_EQ(r.attributes(),
            (std::vector<std::string>{"A", "B", kDemoteAttrColumn,
                                      kDemoteValueColumn}));
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.tuples()[0], Tuple::OfAtoms({"1", "2", "A", "1"}));
  EXPECT_EQ(r.tuples()[1], Tuple::OfAtoms({"1", "2", "B", "2"}));
}

TEST(DemoteTest, MultipliesTupleCountByArity) {
  Database out = MustApply(DemoteOp{"Prices"}, MakeFlightsB());
  EXPECT_EQ(Rel(out, "Prices").size(), 4u * 4u);
}

TEST(DemoteTest, PreservesNullsInValueColumn) {
  Database db = Tdb("relation R (A, B) { (1, null) }");
  Database out = MustApply(DemoteOp{"R"}, db);
  const Relation& r = Rel(out, "R");
  EXPECT_TRUE(r.tuples()[1][3].is_null());  // (_att=B, _val=⊥)
  EXPECT_EQ(r.tuples()[1][2], Value("B"));
}

TEST(DemoteTest, ErrorsOnRepeatedDemote) {
  Database db = Tdb("relation R (A) { (1) }");
  Database once = MustApply(DemoteOp{"R"}, db);
  EXPECT_EQ(ApplyOp(DemoteOp{"R"}, once).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(DemoteTest, EmptyRelationStaysEmpty) {
  Database db = Tdb("relation R (A) { }");
  Database out = MustApply(DemoteOp{"R"}, db);
  EXPECT_TRUE(Rel(out, "R").empty());
  EXPECT_EQ(Rel(out, "R").arity(), 3u);
}

TEST(DemoteTest, InvertsPromoteViaContainment) {
  // demote(promote(R)) recovers R's data among its rows.
  Database db = MakeFlightsB();
  Database promoted = MustApply(PromoteOp{"Prices", "Route", "Cost"}, db);
  Database demoted = MustApply(DemoteOp{"Prices"}, promoted);
  // Original (Carrier, Route, Cost, AgentFee) tuples still project out.
  EXPECT_TRUE(demoted.Contains(db));
}

// ---------------------------------------------------------------------------
// ℘ partition
// ---------------------------------------------------------------------------

TEST(PartitionTest, CreatesRelationPerValue) {
  Database out =
      MustApply(PartitionOp{"Prices", "Carrier"}, MakeFlightsB());
  EXPECT_TRUE(out.HasRelation("AirEast"));
  EXPECT_TRUE(out.HasRelation("JetWest"));
  EXPECT_TRUE(out.HasRelation("Prices"));  // original kept
  const Relation& ae = Rel(out, "AirEast");
  EXPECT_EQ(ae.attributes(), Rel(out, "Prices").attributes());
  EXPECT_EQ(ae.size(), 2u);
  for (const Tuple& t : ae.tuples()) EXPECT_EQ(t[0], Value("AirEast"));
}

TEST(PartitionTest, NullValuesExcluded) {
  Database db = Tdb("relation R (A, B) { (x, 1) (null, 2) }");
  Database out = MustApply(PartitionOp{"R", "A"}, db);
  EXPECT_TRUE(out.HasRelation("x"));
  EXPECT_EQ(out.relation_count(), 2u);  // R and x only
  EXPECT_EQ(Rel(out, "x").size(), 1u);
}

TEST(PartitionTest, ErrorsOnNameCollision) {
  Database db = Tdb("relation R (A) { (R) }");
  EXPECT_EQ(ApplyOp(PartitionOp{"R", "A"}, db).status().code(),
            StatusCode::kAlreadyExists);
}

TEST(PartitionTest, ErrorsOnMissingInputs) {
  Database db = Tdb("relation R (A) { (x) }");
  EXPECT_FALSE(ApplyOp(PartitionOp{"Z", "A"}, db).ok());
  EXPECT_FALSE(ApplyOp(PartitionOp{"R", "Z"}, db).ok());
}

// ---------------------------------------------------------------------------
// × product
// ---------------------------------------------------------------------------

TEST(ProductTest, CartesianProduct) {
  Database db = Tdb(
      "relation R (A) { (1) (2) }\n"
      "relation S (B, C) { (x, y) }");
  Database out = MustApply(ProductOp{"R", "S"}, db);
  const Relation& p = Rel(out, "R*S");
  EXPECT_EQ(p.attributes(), (std::vector<std::string>{"A", "B", "C"}));
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p.tuples()[0], Tuple::OfAtoms({"1", "x", "y"}));
  EXPECT_EQ(p.tuples()[1], Tuple::OfAtoms({"2", "x", "y"}));
  EXPECT_TRUE(out.HasRelation("R"));
  EXPECT_TRUE(out.HasRelation("S"));
}

TEST(ProductTest, EmptyOperandGivesEmptyProduct) {
  Database db = Tdb("relation R (A) { (1) }\nrelation S (B) { }");
  Database out = MustApply(ProductOp{"R", "S"}, db);
  EXPECT_TRUE(Rel(out, "R*S").empty());
}

TEST(ProductTest, ErrorsOnAttributeOverlap) {
  Database db = Tdb("relation R (A) { (1) }\nrelation S (A) { (2) }");
  EXPECT_FALSE(ApplyOp(ProductOp{"R", "S"}, db).ok());
}

TEST(ProductTest, ErrorsOnSelfProduct) {
  Database db = Tdb("relation R (A) { (1) }");
  EXPECT_FALSE(ApplyOp(ProductOp{"R", "R"}, db).ok());
}

TEST(ProductTest, ErrorsOnResultNameCollision) {
  Database db = Tdb(
      "relation R (A) { (1) }\n"
      "relation S (B) { (2) }\n"
      "relation \"R*S\" (C) { }");
  EXPECT_EQ(ApplyOp(ProductOp{"R", "S"}, db).status().code(),
            StatusCode::kAlreadyExists);
}

// ---------------------------------------------------------------------------
// π̄ drop
// ---------------------------------------------------------------------------

TEST(DropTest, RemovesColumn) {
  Database db = Tdb("relation R (A, B) { (1, 2) }");
  Database out = MustApply(DropOp{"R", "A"}, db);
  const Relation& r = Rel(out, "R");
  EXPECT_EQ(r.attributes(), (std::vector<std::string>{"B"}));
  EXPECT_EQ(r.tuples()[0], Tuple::OfAtoms({"2"}));
}

TEST(DropTest, RefusesLastColumn) {
  Database db = Tdb("relation R (A) { (1) }");
  EXPECT_EQ(ApplyOp(DropOp{"R", "A"}, db).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(DropTest, ErrorsOnMissing) {
  Database db = Tdb("relation R (A, B) { (1, 2) }");
  EXPECT_FALSE(ApplyOp(DropOp{"R", "Z"}, db).ok());
  EXPECT_FALSE(ApplyOp(DropOp{"Z", "A"}, db).ok());
}

// ---------------------------------------------------------------------------
// µ merge
// ---------------------------------------------------------------------------

TEST(MergeTest, MergesNullCompatibleTuplesWithSameKey) {
  Database db = Tdb(
      "relation R (K, X, Y) { (k, 1, null) (k, null, 2) }");
  Database out = MustApply(MergeOp{"R", "K"}, db);
  const Relation& r = Rel(out, "R");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.tuples()[0], Tuple::OfAtoms({"k", "1", "2"}));
}

TEST(MergeTest, DifferentKeysDoNotMerge) {
  Database db = Tdb(
      "relation R (K, X, Y) { (k1, 1, null) (k2, null, 2) }");
  Database out = MustApply(MergeOp{"R", "K"}, db);
  EXPECT_EQ(Rel(out, "R").size(), 2u);
}

TEST(MergeTest, ConflictingValuesDoNotMerge) {
  Database db = Tdb("relation R (K, X) { (k, 1) (k, 2) }");
  Database out = MustApply(MergeOp{"R", "K"}, db);
  EXPECT_EQ(Rel(out, "R").size(), 2u);
}

TEST(MergeTest, ExactDuplicatesCollapse) {
  Database db = Tdb("relation R (K, X) { (k, 1) (k, 1) }");
  Database out = MustApply(MergeOp{"R", "K"}, db);
  EXPECT_EQ(Rel(out, "R").size(), 1u);
}

TEST(MergeTest, NullKeyTuplesLeftAlone) {
  Database db = Tdb("relation R (K, X) { (null, 1) (null, 1) }");
  Database out = MustApply(MergeOp{"R", "K"}, db);
  EXPECT_EQ(Rel(out, "R").size(), 2u);
}

TEST(MergeTest, ChainMergesToFixpoint) {
  // Three tuples pairwise mergeable only transitively.
  Database db = Tdb(
      "relation R (K, X, Y, Z) {"
      " (k, 1, null, null) (k, null, 2, null) (k, null, null, 3) }");
  Database out = MustApply(MergeOp{"R", "K"}, db);
  const Relation& r = Rel(out, "R");
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r.tuples()[0], Tuple::OfAtoms({"k", "1", "2", "3"}));
}

TEST(MergeTest, PaperExampleFlightsBtoA) {
  // promote, drop Route, drop Cost, then merge on Carrier gives the
  // FlightsA shape.
  Database db = MakeFlightsB();
  db = MustApply(PromoteOp{"Prices", "Route", "Cost"}, db);
  db = MustApply(DropOp{"Prices", "Route"}, db);
  db = MustApply(DropOp{"Prices", "Cost"}, db);
  db = MustApply(MergeOp{"Prices", "Carrier"}, db);
  const Relation& r = Rel(db, "Prices");
  ASSERT_EQ(r.size(), 2u);
  EXPECT_EQ(r.tuples()[0], Tuple::OfAtoms({"AirEast", "15", "100", "110"}));
  EXPECT_EQ(r.tuples()[1], Tuple::OfAtoms({"JetWest", "16", "200", "220"}));
}

// ---------------------------------------------------------------------------
// ρ renames
// ---------------------------------------------------------------------------

TEST(RenameAttrTest, Renames) {
  Database db = Tdb("relation R (A, B) { (1, 2) }");
  Database out = MustApply(RenameAttrOp{"R", "A", "X"}, db);
  EXPECT_EQ(Rel(out, "R").attributes(),
            (std::vector<std::string>{"X", "B"}));
}

TEST(RenameAttrTest, Errors) {
  Database db = Tdb("relation R (A, B) { (1, 2) }");
  EXPECT_FALSE(ApplyOp(RenameAttrOp{"R", "Z", "X"}, db).ok());
  EXPECT_FALSE(ApplyOp(RenameAttrOp{"R", "A", "B"}, db).ok());
  EXPECT_FALSE(ApplyOp(RenameAttrOp{"Z", "A", "X"}, db).ok());
}

TEST(RenameRelTest, RenamesWholeRelation) {
  Database db = Tdb("relation R (A) { (1) }");
  Database out = MustApply(RenameRelOp{"R", "S"}, db);
  EXPECT_FALSE(out.HasRelation("R"));
  EXPECT_EQ(Rel(out, "S").name(), "S");
}

TEST(RenameRelTest, Errors) {
  Database db = Tdb("relation R (A) { (1) }\nrelation S (B) { (2) }");
  EXPECT_FALSE(ApplyOp(RenameRelOp{"R", "S"}, db).ok());
  EXPECT_FALSE(ApplyOp(RenameRelOp{"Z", "T"}, db).ok());
}

// ---------------------------------------------------------------------------
// → dereference
// ---------------------------------------------------------------------------

TEST(DereferenceTest, FollowsPointerColumn) {
  Database db = Tdb("relation R (P, A, B) { (A, 1, 2) (B, 3, 4) }");
  Database out = MustApply(DereferenceOp{"R", "P", "Out"}, db);
  const Relation& r = Rel(out, "R");
  EXPECT_EQ(r.attributes(),
            (std::vector<std::string>{"P", "A", "B", "Out"}));
  EXPECT_EQ(r.tuples()[0][3], Value("1"));  // t[t[P]] = t[A] = 1
  EXPECT_EQ(r.tuples()[1][3], Value("4"));  // t[t[P]] = t[B] = 4
}

TEST(DereferenceTest, UnresolvablePointerYieldsNull) {
  Database db = Tdb("relation R (P, A) { (Nope, 1) (null, 2) }");
  Database out = MustApply(DereferenceOp{"R", "P", "Out"}, db);
  const Relation& r = Rel(out, "R");
  EXPECT_TRUE(r.tuples()[0][2].is_null());
  EXPECT_TRUE(r.tuples()[1][2].is_null());
}

TEST(DereferenceTest, Errors) {
  Database db = Tdb("relation R (P, A) { (A, 1) }");
  EXPECT_FALSE(ApplyOp(DereferenceOp{"R", "Z", "Out"}, db).ok());
  EXPECT_FALSE(ApplyOp(DereferenceOp{"R", "P", "A"}, db).ok());  // collision
  EXPECT_FALSE(ApplyOp(DereferenceOp{"Z", "P", "Out"}, db).ok());
}

// ---------------------------------------------------------------------------
// λ apply
// ---------------------------------------------------------------------------

class ApplyFunctionTest : public testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(RegisterBuiltinFunctions(&registry_).ok());
  }
  FunctionRegistry registry_;
};

TEST_F(ApplyFunctionTest, ComputesColumn) {
  Database db = Tdb("relation R (A, B) { (1, 2) (10, 20) }");
  Database out = MustApply(ApplyFunctionOp{"R", "add", {"A", "B"}, "Sum"},
                           db, &registry_);
  const Relation& r = Rel(out, "R");
  EXPECT_EQ(r.attributes(), (std::vector<std::string>{"A", "B", "Sum"}));
  EXPECT_EQ(r.tuples()[0][2], Value("3"));
  EXPECT_EQ(r.tuples()[1][2], Value("30"));
}

TEST_F(ApplyFunctionTest, NullInputYieldsNullOutput) {
  Database db = Tdb("relation R (A, B) { (1, null) }");
  Database out = MustApply(ApplyFunctionOp{"R", "add", {"A", "B"}, "Sum"},
                           db, &registry_);
  EXPECT_TRUE(Rel(out, "R").tuples()[0][2].is_null());
}

TEST_F(ApplyFunctionTest, PerTupleFailureYieldsNull) {
  Database db = Tdb("relation R (A, B) { (1, two) (3, 4) }");
  Database out = MustApply(ApplyFunctionOp{"R", "add", {"A", "B"}, "Sum"},
                           db, &registry_);
  const Relation& r = Rel(out, "R");
  EXPECT_TRUE(r.tuples()[0][2].is_null());
  EXPECT_EQ(r.tuples()[1][2], Value("7"));
}

TEST_F(ApplyFunctionTest, PaperExample6TotalCost) {
  // λ^TotalCost_{f3, Cost, AgentFee}(FlightsB).
  Database out = MustApply(
      ApplyFunctionOp{"Prices", "add", {"Cost", "AgentFee"}, "TotalCost"},
      MakeFlightsB(), &registry_);
  const Relation& r = Rel(out, "Prices");
  EXPECT_EQ(r.tuples()[0][4], Value("115"));
  EXPECT_EQ(r.tuples()[1][4], Value("216"));
  EXPECT_EQ(r.tuples()[2][4], Value("125"));
  EXPECT_EQ(r.tuples()[3][4], Value("236"));
}

TEST_F(ApplyFunctionTest, ConfigurationErrors) {
  Database db = Tdb("relation R (A, B) { (1, 2) }");
  // No registry.
  EXPECT_EQ(ApplyOp(ApplyFunctionOp{"R", "add", {"A", "B"}, "S"}, db, nullptr)
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
  // Unknown function.
  EXPECT_EQ(ApplyOp(ApplyFunctionOp{"R", "nope", {"A"}, "S"}, db, &registry_)
                .status()
                .code(),
            StatusCode::kNotFound);
  // Arity mismatch.
  EXPECT_FALSE(
      ApplyOp(ApplyFunctionOp{"R", "add", {"A"}, "S"}, db, &registry_).ok());
  // Missing input attribute.
  EXPECT_FALSE(
      ApplyOp(ApplyFunctionOp{"R", "add", {"A", "Z"}, "S"}, db, &registry_)
          .ok());
  // Output collision.
  EXPECT_FALSE(
      ApplyOp(ApplyFunctionOp{"R", "add", {"A", "B"}, "B"}, db, &registry_)
          .ok());
}

// ---------------------------------------------------------------------------
// General executor behavior
// ---------------------------------------------------------------------------

TEST(ExecutorTest, InputDatabaseIsUntouched) {
  Database db = Tdb("relation R (A, B) { (1, 2) }");
  std::string before = db.CanonicalKey();
  Database out = MustApply(DropOp{"R", "A"}, db);
  EXPECT_EQ(db.CanonicalKey(), before);
  EXPECT_NE(out.CanonicalKey(), before);
}

TEST(ExecutorTest, OpsOnlyTouchTheirRelation) {
  Database db = Tdb("relation R (A, B) { (1, 2) }\nrelation S (C) { (3) }");
  Database out = MustApply(DropOp{"R", "A"}, db);
  EXPECT_TRUE(Rel(out, "S").ContentsEqual(Rel(db, "S")));
}

TEST(OpPrintingTest, ScriptForms) {
  EXPECT_EQ(OpToScript(PromoteOp{"R", "A", "B"}), "promote(R, A, B)");
  EXPECT_EQ(OpToScript(DemoteOp{"R"}), "demote(R)");
  EXPECT_EQ(OpToScript(PartitionOp{"R", "A"}), "partition(R, A)");
  EXPECT_EQ(OpToScript(ProductOp{"R", "S"}), "product(R, S)");
  EXPECT_EQ(OpToScript(DropOp{"R", "A"}), "drop(R, A)");
  EXPECT_EQ(OpToScript(MergeOp{"R", "A"}), "merge(R, A)");
  EXPECT_EQ(OpToScript(RenameAttrOp{"R", "A", "B"}), "rename_att(R, A, B)");
  EXPECT_EQ(OpToScript(RenameRelOp{"R", "S"}), "rename_rel(R, S)");
  EXPECT_EQ(OpToScript(DereferenceOp{"R", "P", "O"}),
            "dereference(R, P, O)");
  EXPECT_EQ(OpToScript(ApplyFunctionOp{"R", "f", {"A", "B"}, "O"}),
            "apply(R, f, [A, B], O)");
}

TEST(OpPrintingTest, QuotesAwkwardNames) {
  EXPECT_EQ(OpToScript(DemoteOp{"has space"}), "demote(\"has space\")");
  EXPECT_EQ(OpToScript(DropOp{"R", "a,b"}), "drop(R, \"a,b\")");
}

TEST(OpPrintingTest, PrettyForms) {
  EXPECT_EQ(OpToPretty(PromoteOp{"R", "A", "B"}), "↑^A_B(R)");
  EXPECT_EQ(OpToPretty(DemoteOp{"R"}), "↓(R)");
  EXPECT_EQ(OpToPretty(RenameRelOp{"R", "S"}), "ρrel_R→S");
}

TEST(OpPrintingTest, NamesAndTargets) {
  EXPECT_EQ(OpName(MergeOp{"R", "A"}), "merge");
  EXPECT_EQ(OpTargetRelation(ProductOp{"L", "Rr"}), "L");
  EXPECT_EQ(OpTargetRelation(RenameRelOp{"From", "To"}), "From");
  EXPECT_EQ(ProductResultName(ProductOp{"L", "Rr"}), "L*Rr");
}

}  // namespace
}  // namespace tupelo
