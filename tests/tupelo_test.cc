#include <gtest/gtest.h>

#include <string>

#include "core/tupelo.h"
#include "fira/builtin_functions.h"
#include "relational/io.h"
#include "workloads/flights.h"

namespace tupelo {
namespace {

Database Tdb(const char* text) {
  Result<Database> db = ParseTdb(text);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

TupeloResult MustDiscover(const Tupelo& system, const TupeloOptions& options) {
  Result<TupeloResult> r = system.Discover(options);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TEST(TupeloTest, IdentityMappingIsEmpty) {
  Database db = Tdb("relation R (A) { (1) }");
  Tupelo system(db, db);
  TupeloResult r = MustDiscover(system, {});
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(r.mapping.empty());
  EXPECT_EQ(r.stats.solution_cost, 0);
  EXPECT_TRUE(r.verified);
}

TEST(TupeloTest, SimpleRenameDiscovery) {
  Database source = Tdb("relation R (A) { (1) }");
  Database target = Tdb("relation R (B) { (1) }");
  Tupelo system(source, target);
  TupeloResult r = MustDiscover(system, {});
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.stats.solution_cost, 1);
  EXPECT_EQ(r.mapping.steps()[0], Op(RenameAttrOp{"R", "A", "B"}));
  EXPECT_TRUE(r.verified);
}

TEST(TupeloTest, DiscoversAcrossAllAlgorithms) {
  Database source = Tdb("relation S (A, B) { (1, 2) }");
  Database target = Tdb("relation T (X, B) { (1, 2) }");
  for (SearchAlgorithm algo : {SearchAlgorithm::kIda, SearchAlgorithm::kRbfs,
                               SearchAlgorithm::kAStar,
                               SearchAlgorithm::kGreedy,
                               SearchAlgorithm::kBeam}) {
    Tupelo system(source, target);
    TupeloOptions options;
    options.algorithm = algo;
    TupeloResult r = MustDiscover(system, options);
    ASSERT_TRUE(r.found) << SearchAlgorithmName(algo);
    EXPECT_EQ(r.stats.solution_cost, 2) << SearchAlgorithmName(algo);
    EXPECT_TRUE(r.verified) << SearchAlgorithmName(algo);
  }
}

TEST(TupeloTest, DiscoversAcrossAllHeuristics) {
  Database source = Tdb("relation R (A, B) { (x, y) }");
  Database target = Tdb("relation R (A2, B) { (x, y) }");
  for (HeuristicKind kind : AllHeuristicKinds()) {
    Tupelo system(source, target);
    TupeloOptions options;
    options.heuristic = kind;
    options.limits.max_states = 100000;
    TupeloResult r = MustDiscover(system, options);
    EXPECT_TRUE(r.found) << HeuristicKindName(kind);
    EXPECT_TRUE(r.verified) << HeuristicKindName(kind);
  }
}

TEST(TupeloTest, FlightsBToADataMetadataRestructuring) {
  Tupelo system(MakeFlightsB(), MakeFlightsA());
  TupeloOptions options;
  options.algorithm = SearchAlgorithm::kRbfs;
  options.heuristic = HeuristicKind::kH1;
  options.limits.max_states = 200000;
  TupeloResult r = MustDiscover(system, options);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(r.verified);
  // The minimal expression needs 6 operators (Example 2); search may find
  // an equivalent one of the same depth.
  EXPECT_EQ(r.stats.solution_cost, 6);
}

TEST(TupeloTest, FlightsBToCWithComplexFunction) {
  FunctionRegistry registry;
  ASSERT_TRUE(RegisterBuiltinFunctions(&registry).ok());
  Tupelo system(MakeFlightsB(), MakeFlightsC());
  system.set_registry(&registry);
  for (const SemanticCorrespondence& c : FlightsBToCCorrespondences()) {
    system.AddCorrespondence(c);
  }
  TupeloOptions options;
  options.limits.max_states = 200000;
  TupeloResult r = MustDiscover(system, options);
  ASSERT_TRUE(r.found);
  EXPECT_TRUE(r.verified);
  // Must contain a λ step.
  bool has_lambda = false;
  for (const Op& op : r.mapping.steps()) {
    if (OpName(op) == "apply") has_lambda = true;
  }
  EXPECT_TRUE(has_lambda);
}

TEST(TupeloTest, UnreachableTargetReportsNotFound) {
  // Target value never appears in the source and no function provides it.
  Database source = Tdb("relation R (A) { (1) }");
  Database target = Tdb("relation R (A) { (2) }");
  Tupelo system(source, target);
  TupeloOptions options;
  options.limits.max_states = 5000;
  TupeloResult r = MustDiscover(system, options);
  EXPECT_FALSE(r.found);
}

TEST(TupeloTest, BudgetExhaustionFlagged) {
  Database source = Tdb("relation R (A1, A2, A3, A4) { (a, b, c, d) }");
  Database target = Tdb("relation R (B1, B2, B3, B4) { (a, b, c, d) }");
  Tupelo system(source, target);
  TupeloOptions options;
  options.heuristic = HeuristicKind::kH0;
  options.limits.max_states = 10;  // far too small
  TupeloResult r = MustDiscover(system, options);
  EXPECT_FALSE(r.found);
  EXPECT_TRUE(r.budget_exhausted);
}

TEST(TupeloTest, CorrespondenceWithoutRegistryIsConfigError) {
  Tupelo system(MakeFlightsB(), MakeFlightsC());
  system.AddCorrespondence({"add", {"Cost", "AgentFee"}, "TotalCost"});
  Result<TupeloResult> r = system.Discover({});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(TupeloTest, UnknownFunctionIsConfigError) {
  FunctionRegistry registry;
  Tupelo system(MakeFlightsB(), MakeFlightsC());
  system.set_registry(&registry);
  system.AddCorrespondence({"mystery", {"Cost"}, "Out"});
  EXPECT_EQ(system.Discover({}).status().code(), StatusCode::kNotFound);
}

TEST(TupeloTest, ArityMismatchIsConfigError) {
  FunctionRegistry registry;
  ASSERT_TRUE(RegisterBuiltinFunctions(&registry).ok());
  Tupelo system(MakeFlightsB(), MakeFlightsC());
  system.set_registry(&registry);
  system.AddCorrespondence({"add", {"Cost"}, "Out"});
  EXPECT_EQ(system.Discover({}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TupeloTest, EmptyOutputIsConfigError) {
  FunctionRegistry registry;
  ASSERT_TRUE(RegisterBuiltinFunctions(&registry).ok());
  Tupelo system(MakeFlightsB(), MakeFlightsC());
  system.set_registry(&registry);
  system.AddCorrespondence({"add", {"Cost", "AgentFee"}, ""});
  EXPECT_EQ(system.Discover({}).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(TupeloTest, ScaleOverrideRespected) {
  // A tiny k collapses the cosine heuristic to near-blindness but must
  // still find the mapping.
  Database source = Tdb("relation R (A) { (1) }");
  Database target = Tdb("relation R (B) { (1) }");
  Tupelo system(source, target);
  TupeloOptions options;
  options.heuristic = HeuristicKind::kCosine;
  options.scale_k = 1.0;
  TupeloResult r = MustDiscover(system, options);
  EXPECT_TRUE(r.found);
}

TEST(TupeloTest, DiscoverMappingConvenienceWrapper) {
  Database source = Tdb("relation R (A) { (1) }");
  Database target = Tdb("relation R (B) { (1) }");
  Result<TupeloResult> r = DiscoverMapping(source, target);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->found);
}

TEST(TupeloTest, StatsPopulated) {
  Database source = Tdb("relation R (A, B) { (1, 2) }");
  Database target = Tdb("relation R (X, Y) { (1, 2) }");
  Tupelo system(source, target);
  TupeloResult r = MustDiscover(system, {});
  ASSERT_TRUE(r.found);
  EXPECT_GE(r.stats.states_examined, 3u);
  EXPECT_GE(r.stats.states_generated, 2u);
  EXPECT_EQ(r.stats.solution_cost, 2);
}

TEST(TupeloTest, GreedySolutionMayBeSuboptimalButVerifies) {
  Database source = Tdb("relation R (A, B) { (x, y) }");
  Database target = Tdb("relation R (C, D) { (x, y) }");
  TupeloOptions options;
  options.algorithm = SearchAlgorithm::kGreedy;
  Result<TupeloResult> r = DiscoverMapping(source, target, options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->found);
  EXPECT_GE(r->stats.solution_cost, 2);  // optimal is 2; greedy may exceed
  EXPECT_TRUE(r->verified);
}

TEST(TupeloTest, SimplifyOptionShortensDetours) {
  // Force a detour-prone discovery and verify simplify keeps correctness.
  Database source = Tdb("relation R (A, B) { (x, y) }");
  Database target = Tdb("relation R (B, C) { (x, y) }");  // chain A->B->C
  TupeloOptions options;
  options.simplify = true;
  options.limits.max_states = 500000;
  Result<TupeloResult> r = DiscoverMapping(source, target, options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->found);
  EXPECT_TRUE(r->verified);  // verification runs on the simplified form
}

TEST(TupeloTest, AlwaysFailingFunctionMakesTargetUnreachable) {
  // Failure injection: a registered function that errors on every input
  // yields null λ outputs, so the target values never materialize and the
  // search must terminate with found=false rather than crash.
  FunctionRegistry registry;
  ComplexFunction broken;
  broken.name = "broken";
  broken.arity = 1;
  broken.impl = [](const std::vector<std::string>&) -> Result<std::string> {
    return Status::Internal("always fails");
  };
  ASSERT_TRUE(registry.Register(std::move(broken)).ok());

  Database source = Tdb("relation R (A) { (1) }");
  Database target = Tdb("relation R (A, Out) { (1, 2) }");
  Tupelo system(source, target);
  system.set_registry(&registry);
  system.AddCorrespondence({"broken", {"A"}, "Out"});
  TupeloOptions options;
  options.limits.max_states = 5000;
  Result<TupeloResult> r = system.Discover(options);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->found);
}

TEST(TupeloTest, MultiRelationSourceAndTarget) {
  Database source = Tdb(
      "relation Emp (Name) { (ada) }\n"
      "relation Dept (Id) { (d1) }");
  Database target = Tdb(
      "relation Employees (Name) { (ada) }\n"
      "relation Departments (Id) { (d1) }");
  Tupelo system(source, target);
  TupeloOptions options;
  options.limits.max_states = 100000;
  TupeloResult r = MustDiscover(system, options);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.stats.solution_cost, 2);
  EXPECT_TRUE(r.verified);
}

}  // namespace
}  // namespace tupelo
