#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/mapping_repository.h"
#include "core/tupelo.h"
#include "fira/builtin_functions.h"
#include "workloads/flights.h"

namespace tupelo {
namespace {

StoredMapping ExampleMapping() {
  StoredMapping m;
  m.name = "prices_to_flights";
  m.expression = FlightsBToAExpression();
  m.source_instance = MakeFlightsB();
  m.target_instance = MakeFlightsA();
  m.algorithm = "rbfs";
  m.heuristic = "h1";
  m.states_examined = 2570;
  return m;
}

TEST(MappingRepositoryTest, WriteParseRoundTrip) {
  StoredMapping m = ExampleMapping();
  Result<StoredMapping> back = ParseMapping(WriteMapping(m));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->name, m.name);
  EXPECT_EQ(back->algorithm, "rbfs");
  EXPECT_EQ(back->heuristic, "h1");
  EXPECT_EQ(back->states_examined, 2570u);
  EXPECT_EQ(back->expression, m.expression);
  EXPECT_TRUE(back->source_instance.ContentsEqual(m.source_instance));
  EXPECT_TRUE(back->target_instance.ContentsEqual(m.target_instance));
}

TEST(MappingRepositoryTest, RoundTripWithCorrespondences) {
  StoredMapping m;
  m.name = "b_to_c";
  m.source_instance = MakeFlightsB();
  m.target_instance = MakeFlightsC();
  m.correspondences = FlightsBToCCorrespondences();
  m.expression.Append(
      ApplyFunctionOp{"Prices", "add", {"Cost", "AgentFee"}, "TotalCost"});
  m.expression.Append(PartitionOp{"Prices", "Carrier"});
  m.expression.Append(RenameAttrOp{"AirEast", "Cost", "BaseCost"});
  m.expression.Append(RenameAttrOp{"JetWest", "Cost", "BaseCost"});
  Result<StoredMapping> back = ParseMapping(WriteMapping(m));
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->correspondences.size(), 1u);
  EXPECT_EQ(back->correspondences[0],
            (SemanticCorrespondence{"add", {"Cost", "AgentFee"},
                                    "TotalCost"}));
  EXPECT_EQ(back->expression, m.expression);
}

TEST(MappingRepositoryTest, RoundTripAwkwardNames) {
  StoredMapping m;
  m.name = "odd name with spaces";
  m.source_instance = MakeFlightsB();
  m.target_instance = MakeFlightsA();
  m.expression.Append(RenameAttrOp{"Prices", "AgentFee", "new fee"});
  m.correspondences.push_back(
      {"concat", {"a b", "c,d"}, "out put"});
  Result<StoredMapping> back = ParseMapping(WriteMapping(m));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->name, m.name);
  EXPECT_EQ(back->correspondences, m.correspondences);
  EXPECT_EQ(back->expression, m.expression);
}

TEST(MappingRepositoryTest, ValidateStoredMapping) {
  StoredMapping good = ExampleMapping();
  Result<bool> ok = ValidateStoredMapping(good);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(*ok);

  // Tamper with the expression: validation reports false (or an error for
  // inapplicable expressions).
  StoredMapping bad = good;
  bad.expression = MappingExpression();
  Result<bool> tampered = ValidateStoredMapping(bad);
  ASSERT_TRUE(tampered.ok());
  EXPECT_FALSE(*tampered);
}

TEST(MappingRepositoryTest, ValidateWithLambda) {
  FunctionRegistry registry;
  ASSERT_TRUE(RegisterBuiltinFunctions(&registry).ok());
  StoredMapping m;
  m.source_instance = MakeFlightsB();
  m.target_instance = MakeFlightsC();
  m.correspondences = FlightsBToCCorrespondences();
  m.expression.Append(
      ApplyFunctionOp{"Prices", "add", {"Cost", "AgentFee"}, "TotalCost"});
  m.expression.Append(RenameAttrOp{"Prices", "Cost", "BaseCost"});
  m.expression.Append(PartitionOp{"Prices", "Carrier"});
  Result<bool> ok = ValidateStoredMapping(m, &registry);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_TRUE(*ok);
  // Without the registry, execution fails cleanly.
  EXPECT_FALSE(ValidateStoredMapping(m, nullptr).ok());
}

TEST(MappingRepositoryTest, FileRoundTrip) {
  std::string path = testing::TempDir() + "/tupelo_repo_test.tmap";
  StoredMapping m = ExampleMapping();
  ASSERT_TRUE(SaveMappingFile(m, path).ok());
  Result<StoredMapping> back = LoadMappingFile(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->expression, m.expression);
  std::remove(path.c_str());
}

TEST(MappingRepositoryTest, Rejections) {
  EXPECT_FALSE(ParseMapping("").ok());
  EXPECT_FALSE(ParseMapping("not a mapping").ok());
  EXPECT_FALSE(ParseMapping("tupelo-mapping 99\n").ok());
  // Missing sections.
  EXPECT_FALSE(ParseMapping("tupelo-mapping 1\nname x\n").ok());
  // Unterminated section.
  EXPECT_FALSE(
      ParseMapping("tupelo-mapping 1\nbegin source\nrelation R (A) { }\n")
          .ok());
  // Unknown section.
  EXPECT_FALSE(
      ParseMapping("tupelo-mapping 1\nbegin junk\nend junk\n").ok());
  // Bad states value.
  EXPECT_FALSE(ParseMapping("tupelo-mapping 1\nstates abc\n").ok());
  // Unknown header keyword.
  EXPECT_FALSE(ParseMapping("tupelo-mapping 1\nbogus x\n").ok());
}

TEST(MappingRepositoryTest, EndToEndFromDiscovery) {
  TupeloOptions options;
  options.limits.max_states = 200000;
  Result<TupeloResult> r =
      DiscoverMapping(MakeFlightsB(), MakeFlightsA(), options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->found);

  StoredMapping m;
  m.name = "discovered";
  m.expression = r->mapping;
  m.source_instance = MakeFlightsB();
  m.target_instance = MakeFlightsA();
  m.algorithm = std::string(SearchAlgorithmName(options.algorithm));
  m.heuristic = std::string(HeuristicKindName(options.heuristic));
  m.states_examined = r->stats.states_examined;

  Result<StoredMapping> back = ParseMapping(WriteMapping(m));
  ASSERT_TRUE(back.ok()) << back.status();
  Result<bool> valid = ValidateStoredMapping(*back);
  ASSERT_TRUE(valid.ok());
  EXPECT_TRUE(*valid);
}

}  // namespace
}  // namespace tupelo
