#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "relational/io.h"
#include "workloads/flights.h"

namespace tupelo {
namespace {

Database MustParseTdb(const char* text) {
  Result<Database> db = ParseTdb(text);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

// ---------------------------------------------------------------------------
// .tdb parsing
// ---------------------------------------------------------------------------

TEST(TdbParseTest, EmptyInput) {
  Database db = MustParseTdb("");
  EXPECT_TRUE(db.empty());
  EXPECT_TRUE(MustParseTdb("  \n # just a comment\n").empty());
}

TEST(TdbParseTest, SingleRelation) {
  Database db = MustParseTdb(
      "relation R (A, B) {\n"
      "  (1, 2)\n"
      "  (3, 4)\n"
      "}\n");
  Result<const Relation*> r = db.GetRelation("R");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->attributes(), (std::vector<std::string>{"A", "B"}));
  ASSERT_EQ((*r)->size(), 2u);
  EXPECT_EQ((*r)->tuples()[1], Tuple::OfAtoms({"3", "4"}));
}

TEST(TdbParseTest, MultipleRelations) {
  Database db = MustParseTdb(
      "relation R (A) { (1) }\n"
      "relation S (B) { (2) }\n");
  EXPECT_TRUE(db.HasRelation("R"));
  EXPECT_TRUE(db.HasRelation("S"));
}

TEST(TdbParseTest, NullKeyword) {
  Database db = MustParseTdb("relation R (A, B) { (null, x) }");
  const Relation* r = db.GetRelation("R").value();
  EXPECT_TRUE(r->tuples()[0][0].is_null());
  EXPECT_EQ(r->tuples()[0][1], Value("x"));
}

TEST(TdbParseTest, QuotedStringsWithEscapes) {
  Database db = MustParseTdb(
      R"(relation "My Table" ("Col 1") { ("a\"b\\c\nd") })");
  const Relation* r = db.GetRelation("My Table").value();
  EXPECT_EQ(r->attributes()[0], "Col 1");
  EXPECT_EQ(r->tuples()[0][0], Value("a\"b\\c\nd"));
}

TEST(TdbParseTest, QuotedNullIsAnAtom) {
  // "null" in quotes is the atom, not the null value.
  Database db = MustParseTdb(R"(relation R (A) { ("null") })");
  EXPECT_EQ(db.GetRelation("R").value()->tuples()[0][0], Value("null"));
}

TEST(TdbParseTest, CommentsAnywhere) {
  Database db = MustParseTdb(
      "# header\n"
      "relation R (A) { # schema\n"
      "  (1) # tuple\n"
      "}\n");
  EXPECT_EQ(db.GetRelation("R").value()->size(), 1u);
}

TEST(TdbParseTest, ZeroArityRelation) {
  Database db = MustParseTdb("relation R () { }");
  EXPECT_EQ(db.GetRelation("R").value()->arity(), 0u);
}

TEST(TdbParseTest, ErrorsCarryLineNumbers) {
  Result<Database> r = ParseTdb("relation R (A) {\n  (1,\n}");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line"), std::string::npos);
}

TEST(TdbParseTest, RejectsMalformedInputs) {
  EXPECT_FALSE(ParseTdb("relation").ok());
  EXPECT_FALSE(ParseTdb("relation R").ok());
  EXPECT_FALSE(ParseTdb("relation R (A)").ok());
  EXPECT_FALSE(ParseTdb("relation R (A) { (1) ").ok());     // no closing }
  EXPECT_FALSE(ParseTdb("relation R (A A) { }").ok());      // missing comma
  EXPECT_FALSE(ParseTdb("relation R (A, A) { }").ok());     // dup attribute
  EXPECT_FALSE(ParseTdb("relation R (A) { (1, 2) }").ok()); // arity
  EXPECT_FALSE(ParseTdb("xrelation R (A) { }").ok());
  EXPECT_FALSE(ParseTdb(R"(relation R (A) { ("unterminated) })").ok());
  EXPECT_FALSE(ParseTdb(R"(relation R (A) { ("bad\q") })").ok());
  EXPECT_FALSE(ParseTdb("relation R (A) { (null null) }").ok());
  EXPECT_FALSE(ParseTdb("relation null (A) { }").ok());  // null not a name
}

TEST(TdbParseTest, DuplicateRelationNameRejected) {
  EXPECT_FALSE(ParseTdb("relation R (A) { } relation R (B) { }").ok());
}

TEST(TdbParseTest, EveryTruncationFailsCleanly) {
  // Chopping a valid file at any byte must produce a clean Status or a
  // (shorter) valid database — never a crash or hang.
  const std::string text =
      "# header\n"
      "relation R (A, \"B x\") {\n"
      "  (1, \"two\\n\")\n"
      "  (null, 4)\n"
      "}\n"
      "relation S (C) { (ok) }\n";
  for (size_t len = 0; len < text.size(); ++len) {
    Result<Database> r = ParseTdb(text.substr(0, len));
    if (!r.ok()) {
      EXPECT_FALSE(r.status().message().empty()) << "cut at " << len;
    }
  }
  // A cut inside the tuple list specifically must be an error, not a
  // silently truncated relation.
  EXPECT_FALSE(ParseTdb(text.substr(0, text.find("(null")) ).ok());
}

TEST(TdbParseTest, GarbageBytesFailCleanly) {
  const std::string garbage1("\x00\xff\xfe relation", 12);
  EXPECT_FALSE(ParseTdb(garbage1).ok());
  EXPECT_FALSE(ParseTdb("relation R (,) { }").ok());
  EXPECT_FALSE(ParseTdb("{}{}((()))").ok());
  EXPECT_FALSE(ParseTdb(std::string(64, '(')).ok());
  EXPECT_FALSE(ParseTdb("relation R (A) { (\x01\x02\x03 }").ok());
}

// ---------------------------------------------------------------------------
// .tdb writing / round trips
// ---------------------------------------------------------------------------

TEST(TdbWriteTest, RoundTripFlights) {
  for (const Database& db :
       {MakeFlightsA(), MakeFlightsB(), MakeFlightsC()}) {
    Result<Database> back = ParseTdb(WriteTdb(db));
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_TRUE(back->ContentsEqual(db));
  }
}

TEST(TdbWriteTest, RoundTripAwkwardNames) {
  Database db;
  Result<Relation> r =
      Relation::Create("weird name", {"has space", "has\"quote", "null"});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(
      r->AddTuple(Tuple(std::vector<Value>{Value(""), Value::Null(),
                                           Value("multi\nline")}))
          .ok());
  ASSERT_TRUE(db.AddRelation(std::move(r).value()).ok());
  Result<Database> back = ParseTdb(WriteTdb(db));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(back->ContentsEqual(db));
}

TEST(TdbWriteTest, NullWrittenAsKeyword) {
  Database db;
  Result<Relation> r = Relation::Create("R", {"A"});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->AddTuple(Tuple(std::vector<Value>{Value::Null()})).ok());
  ASSERT_TRUE(db.AddRelation(std::move(r).value()).ok());
  EXPECT_NE(WriteTdb(db).find("(null)"), std::string::npos);
}

// ---------------------------------------------------------------------------
// CSV
// ---------------------------------------------------------------------------

TEST(CsvTest, ParseBasic) {
  Result<Relation> r = ParseCsvRelation("R", "A,B\n1,2\n3,4\n");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->attributes(), (std::vector<std::string>{"A", "B"}));
  ASSERT_EQ(r->size(), 2u);
  EXPECT_EQ(r->tuples()[0], Tuple::OfAtoms({"1", "2"}));
}

TEST(CsvTest, QuotedFieldsAndEscapedQuotes) {
  Result<Relation> r =
      ParseCsvRelation("R", "A,B\n\"x,y\",\"say \"\"hi\"\"\"\n");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->tuples()[0][0], Value("x,y"));
  EXPECT_EQ(r->tuples()[0][1], Value("say \"hi\""));
}

TEST(CsvTest, EmbeddedNewlineInQuotedField) {
  Result<Relation> r = ParseCsvRelation("R", "A\n\"line1\nline2\"\n");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->tuples()[0][0], Value("line1\nline2"));
}

TEST(CsvTest, EmptyUnquotedIsNullQuotedIsEmptyAtom) {
  Result<Relation> r = ParseCsvRelation("R", "A,B\n,\"\"\n");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->tuples()[0][0].is_null());
  EXPECT_EQ(r->tuples()[0][1], Value(""));
}

TEST(CsvTest, CrLfHandled) {
  Result<Relation> r = ParseCsvRelation("R", "A,B\r\n1,2\r\n");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->tuples()[0], Tuple::OfAtoms({"1", "2"}));
}

TEST(CsvTest, MissingFinalNewlineOk) {
  Result<Relation> r = ParseCsvRelation("R", "A,B\n1,2");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->size(), 1u);
}

TEST(CsvTest, Rejections) {
  EXPECT_FALSE(ParseCsvRelation("R", "").ok());           // no header
  EXPECT_FALSE(ParseCsvRelation("R", "A,B\n1\n").ok());   // field count
  EXPECT_FALSE(ParseCsvRelation("R", "A\n\"x\n").ok());   // open quote
  EXPECT_FALSE(ParseCsvRelation("R", "A\nx\"y\n").ok());  // stray quote
  EXPECT_FALSE(ParseCsvRelation("R", "A,A\n1,2\n").ok()); // dup attrs
}

TEST(CsvTest, EveryTruncationFailsCleanlyOrParses) {
  const std::string csv = "A,B,C\n1,\"x,y\",3\n\"say \"\"hi\"\"\",,z\n";
  for (size_t len = 0; len < csv.size(); ++len) {
    Result<Relation> r = ParseCsvRelation("R", csv.substr(0, len));
    if (!r.ok()) {
      EXPECT_FALSE(r.status().message().empty()) << "cut at " << len;
    }
  }
  // A cut inside a quoted field must be an open-quote error, not a
  // silently shortened value.
  EXPECT_FALSE(ParseCsvRelation("R", "A\n\"trunc").ok());
}

TEST(CsvTest, GarbageBytesFailCleanly) {
  const std::string nul_header("\x00,B\n1,2\n", 8);
  // A NUL byte is data, not structure: parsing must not crash on it, and
  // field-count errors must still be detected afterwards.
  Result<Relation> nul = ParseCsvRelation("R", nul_header);
  if (nul.ok()) {
    EXPECT_EQ(nul->arity(), 2u);
  }
  EXPECT_FALSE(ParseCsvRelation("R", "A,B\n\"\x01\n").ok());
  EXPECT_FALSE(ParseCsvRelation("R", "A,B\n1,2,3\n").ok());
}

TEST(CsvTest, WriteRoundTrip) {
  Database db = MakeFlightsB();
  const Relation* rel = db.GetRelation("Prices").value();
  Result<Relation> back = ParseCsvRelation("Prices", WriteCsv(*rel));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(back->ContentsEqual(*rel));
}

TEST(CsvTest, WriteRoundTripWithNullsAndSpecials) {
  Result<Relation> r = Relation::Create("R", {"A", "B", "C"});
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->AddTuple(Tuple(std::vector<Value>{
                              Value("x,y"), Value::Null(), Value("q\"z")}))
                  .ok());
  ASSERT_TRUE(
      r->AddTuple(Tuple(std::vector<Value>{Value(""), Value("line\nbreak"),
                                           Value("plain")}))
          .ok());
  Result<Relation> back = ParseCsvRelation("R", WriteCsv(*r));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(back->ContentsEqual(*r));
}

// ---------------------------------------------------------------------------
// Files
// ---------------------------------------------------------------------------

TEST(FileTest, SaveAndLoad) {
  std::string path = testing::TempDir() + "/tupelo_io_test.tdb";
  Database db = MakeFlightsA();
  ASSERT_TRUE(SaveTdbFile(db, path).ok());
  Result<Database> back = LoadTdbFile(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_TRUE(back->ContentsEqual(db));
  std::remove(path.c_str());
}

TEST(FileTest, LoadMissingFileFails) {
  EXPECT_EQ(LoadTdbFile("/nonexistent/nowhere.tdb").status().code(),
            StatusCode::kNotFound);
}

TEST(FileTest, LoadTruncatedFileFailsCleanly) {
  // Simulates a partially-written database file (crash mid-save).
  std::string path = testing::TempDir() + "/tupelo_io_truncated.tdb";
  std::string full = WriteTdb(MakeFlightsA());
  // Cut just inside the first relation body: the closing brace is gone, so
  // the parse must fail however the rest of the file was laid out.
  ASSERT_NE(full.find('{'), std::string::npos);
  std::string truncated = full.substr(0, full.find('{') + 2);
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fwrite(truncated.data(), 1, truncated.size(), f),
            truncated.size());
  std::fclose(f);
  Result<Database> r = LoadTdbFile(path);
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.status().message().empty());
  std::remove(path.c_str());
}

TEST(FileTest, LoadGarbageFileFailsCleanly) {
  std::string path = testing::TempDir() + "/tupelo_io_garbage.tdb";
  const char bytes[] = "\x7f\x45\x4c\x46\x02\x01\x01\x00 not a tdb file";
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(bytes, 1, sizeof(bytes) - 1, f);
  std::fclose(f);
  EXPECT_FALSE(LoadTdbFile(path).ok());
  std::remove(path.c_str());
}

TEST(FileTest, LoadRunsDatabaseValidate) {
  // Syntactically valid .tdb whose TNF relation cannot decode (one TID
  // repeats an attribute): LoadTdbFile must reject it with a descriptive
  // typed error via Database::Validate, not hand corrupt data to search.
  std::string path = testing::TempDir() + "/tupelo_io_bad_tnf.tdb";
  const char* text =
      "relation TNF (TID, REL, ATT, VALUE) {\n"
      "  (t1, R, A, x)\n"
      "  (t1, R, A, y)\n"
      "}\n";
  FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fwrite(text, 1, std::strlen(text), f);
  std::fclose(f);
  Result<Database> r = LoadTdbFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status().ToString().find("claims TNF"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tupelo
