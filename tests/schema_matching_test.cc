#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "core/schema_matching.h"
#include "relational/io.h"

namespace tupelo {
namespace {

Database Tdb(const char* text) {
  Result<Database> db = ParseTdb(text);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

using Pair = std::pair<std::string, std::string>;

bool HasMatch(const std::vector<Pair>& matches, const char* from,
              const char* to) {
  return std::find(matches.begin(), matches.end(), Pair(from, to)) !=
         matches.end();
}

TEST(SchemaMatchingTest, OneToOneAttributeMatching) {
  Database source = Tdb("relation R (Name, Office) { (ada, b12) }");
  Database target = Tdb("relation R (FullName, Room) { (ada, b12) }");
  Result<SchemaMatch> m = MatchSchemas(source, target);
  ASSERT_TRUE(m.ok()) << m.status();
  ASSERT_TRUE(m->found);
  EXPECT_EQ(m->attribute_matches.size(), 2u);
  EXPECT_TRUE(HasMatch(m->attribute_matches, "Name", "FullName"));
  EXPECT_TRUE(HasMatch(m->attribute_matches, "Office", "Room"));
  EXPECT_TRUE(m->relation_matches.empty());
}

TEST(SchemaMatchingTest, RelationMatching) {
  Database source = Tdb("relation Staff (Name) { (ada) }");
  Database target = Tdb("relation Employees (Name) { (ada) }");
  Result<SchemaMatch> m = MatchSchemas(source, target);
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(m->found);
  EXPECT_TRUE(HasMatch(m->relation_matches, "Staff", "Employees"));
}

TEST(SchemaMatchingTest, IdentitySchemasGiveNoMatches) {
  Database db = Tdb("relation R (A) { (1) }");
  Result<SchemaMatch> m = MatchSchemas(db, db);
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(m->found);
  EXPECT_TRUE(m->attribute_matches.empty());
  EXPECT_TRUE(m->relation_matches.empty());
}

TEST(SchemaMatchingTest, PaperExperiment1Shape) {
  // The synthetic matching task: Ai ↔ Bi for every i.
  Database source = Tdb("relation R (A1, A2, A3) { (a1, a2, a3) }");
  Database target = Tdb("relation R (B1, B2, B3) { (a1, a2, a3) }");
  Result<SchemaMatch> m = MatchSchemas(source, target);
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(m->found);
  EXPECT_TRUE(HasMatch(m->attribute_matches, "A1", "B1"));
  EXPECT_TRUE(HasMatch(m->attribute_matches, "A2", "B2"));
  EXPECT_TRUE(HasMatch(m->attribute_matches, "A3", "B3"));
}

TEST(SchemaMatchingTest, ComposedRenamesReportOriginalNames) {
  // Force a two-step rename chain by making the direct rename collide:
  // source has both A and B; target has B (from A's data) and C (from B's).
  Database source = Tdb("relation R (A, B) { (x, y) }");
  Database target = Tdb("relation R (B, C) { (x, y) }");
  Result<SchemaMatch> m = MatchSchemas(source, target);
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(m->found);
  // B's column (data y) must end up named C, and A's (data x) named B.
  EXPECT_TRUE(HasMatch(m->attribute_matches, "B", "C"));
  EXPECT_TRUE(HasMatch(m->attribute_matches, "A", "B"));
  EXPECT_EQ(m->attribute_matches.size(), 2u);
}

TEST(SchemaMatchingTest, SubsetTargetMatchesOnlyItsAttributes) {
  Database source =
      Tdb("relation R (Title, Author, Year) { (t, a, y) }");
  Database target = Tdb("relation R (Writer) { (a) }");
  Result<SchemaMatch> m = MatchSchemas(source, target);
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(m->found);
  EXPECT_TRUE(HasMatch(m->attribute_matches, "Author", "Writer"));
  EXPECT_EQ(m->attribute_matches.size(), 1u);
}

TEST(SchemaMatchingTest, NotFoundPropagates) {
  Database source = Tdb("relation R (A) { (1) }");
  Database target = Tdb("relation R (A) { (2) }");
  TupeloOptions options;
  options.limits.max_states = 2000;
  Result<SchemaMatch> m = MatchSchemas(source, target, options);
  ASSERT_TRUE(m.ok());
  EXPECT_FALSE(m->found);
  EXPECT_TRUE(m->attribute_matches.empty());
}

TEST(SchemaMatchingTest, StatsAndMappingExposed) {
  Database source = Tdb("relation R (A) { (1) }");
  Database target = Tdb("relation R (B) { (1) }");
  Result<SchemaMatch> m = MatchSchemas(source, target);
  ASSERT_TRUE(m.ok());
  ASSERT_TRUE(m->found);
  EXPECT_GE(m->stats.states_examined, 1u);
  EXPECT_EQ(m->mapping.size(), 1u);
}

}  // namespace
}  // namespace tupelo
