// End-to-end scenarios across the full stack: workloads -> discovery ->
// expression serialization -> re-parse -> re-execution.

#include <gtest/gtest.h>

#include <algorithm>

#include <string>

#include "core/schema_matching.h"
#include "core/tupelo.h"
#include "fira/builtin_functions.h"
#include "fira/parser.h"
#include "relational/io.h"
#include "workloads/bamm.h"
#include "workloads/flights.h"
#include "workloads/semantic.h"
#include "workloads/synthetic.h"

namespace tupelo {
namespace {

TEST(IntegrationTest, DiscoverSerializeReparseReexecute) {
  // The full artifact lifecycle: a discovered mapping survives a round
  // trip through its script form and still maps the source to the target.
  Tupelo system(MakeFlightsB(), MakeFlightsA());
  TupeloOptions options;
  options.limits.max_states = 200000;
  Result<TupeloResult> r = system.Discover(options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->found);

  std::string script = r->mapping.ToScript();
  Result<MappingExpression> reparsed = ParseExpression(script);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status();
  EXPECT_EQ(*reparsed, r->mapping);

  Result<Database> out = reparsed->Apply(MakeFlightsB());
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_TRUE(out->Contains(MakeFlightsA()));
}

TEST(IntegrationTest, DiscoveredMappingGeneralizesToLargerInstance) {
  // Discover on the critical instances, execute on a bigger instance of
  // the same source schema.
  Tupelo system(MakeFlightsB(), MakeFlightsA());
  TupeloOptions options;
  options.limits.max_states = 200000;
  Result<TupeloResult> r = system.Discover(options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->found);

  Result<Database> bigger_r = ParseTdb(
      "relation Prices (Carrier, Route, Cost, AgentFee) {\n"
      "  (AirEast, ATL29, 100, 15)\n"
      "  (JetWest, ATL29, 200, 16)\n"
      "  (AirEast, ORD17, 110, 15)\n"
      "  (JetWest, ORD17, 220, 16)\n"
      "  (AirEast, SFO88, 310, 15)\n"
      "  (JetWest, SFO88, 320, 16)\n"
      "}");
  ASSERT_TRUE(bigger_r.ok());
  Result<Database> out = r->mapping.Apply(*bigger_r);
  ASSERT_TRUE(out.ok()) << out.status();
  const Relation* flights = out->GetRelation("Flights").value();
  EXPECT_TRUE(flights->HasAttribute("SFO88"));
  EXPECT_EQ(flights->size(), 2u);
}

TEST(IntegrationTest, SyntheticExperimentEndToEnd) {
  for (size_t n : {1u, 2u, 4u, 6u}) {
    SyntheticMatchingPair pair = MakeSyntheticMatchingPair(n);
    Result<SchemaMatch> m = MatchSchemas(pair.source, pair.target);
    ASSERT_TRUE(m.ok());
    ASSERT_TRUE(m->found) << "n=" << n;
    EXPECT_EQ(m->attribute_matches.size(), n) << "n=" << n;
    // Every match pairs Ai with Bi (identical index).
    for (const auto& [from, to] : m->attribute_matches) {
      EXPECT_EQ(from.substr(1), to.substr(1)) << from << "->" << to;
    }
  }
}

TEST(IntegrationTest, BammMatchingAlwaysSolvable) {
  BammWorkload w = MakeBammWorkload(BammDomain::kAutos, 123);
  TupeloOptions options;
  options.heuristic = HeuristicKind::kCosine;
  options.limits.max_states = 500000;
  size_t solved = 0;
  // A slice of the domain keeps the test fast.
  for (size_t i = 0; i < 10 && i < w.targets.size(); ++i) {
    Result<TupeloResult> r =
        DiscoverMapping(w.source, w.targets[i], options);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->found) << "target " << i;
    EXPECT_TRUE(r->verified) << "target " << i;
    if (r->found) ++solved;
  }
  EXPECT_EQ(solved, 10u);
}

TEST(IntegrationTest, SemanticWorkloadEndToEnd) {
  SemanticWorkload w = MakeSemanticWorkload(SemanticDomain::kInventory, 3);
  Tupelo system(w.source, w.target);
  system.set_registry(&w.registry);
  for (const SemanticCorrespondence& c : w.correspondences) {
    system.AddCorrespondence(c);
  }
  TupeloOptions options;
  options.heuristic = HeuristicKind::kH1;
  options.limits.max_states = 500000;
  Result<TupeloResult> r = system.Discover(options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->found);
  EXPECT_TRUE(r->verified);
  // Depth: rel rename + 2 attr renames + 3 λ steps.
  EXPECT_EQ(r->stats.solution_cost, 6);
}

TEST(IntegrationTest, FlightsCycleAToBToC) {
  // A -> B needs demote; B -> C needs partition + λ. Chain both directions
  // through discovery to exercise all data-metadata operators.
  FunctionRegistry registry;
  ASSERT_TRUE(RegisterBuiltinFunctions(&registry).ok());

  // A -> B: demote the route columns back to data.
  Tupelo a_to_b(MakeFlightsA(), MakeFlightsB());
  TupeloOptions options;
  options.heuristic = HeuristicKind::kH1;
  options.algorithm = SearchAlgorithm::kRbfs;
  options.limits.max_states = 2000000;
  options.limits.max_depth = 10;
  Result<TupeloResult> r1 = a_to_b.Discover(options);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r1->found) << "A->B not found; states="
                         << r1->stats.states_examined;
  EXPECT_TRUE(r1->verified);

  // B -> C with the complex correspondence.
  Tupelo b_to_c(MakeFlightsB(), MakeFlightsC());
  b_to_c.set_registry(&registry);
  for (const SemanticCorrespondence& c : FlightsBToCCorrespondences()) {
    b_to_c.AddCorrespondence(c);
  }
  Result<TupeloResult> r2 = b_to_c.Discover(options);
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r2->found);
  EXPECT_TRUE(r2->verified);

  // Composing the two expressions maps A's instance all the way to C.
  Result<Database> b_inst = r1->mapping.Apply(MakeFlightsA(), &registry);
  ASSERT_TRUE(b_inst.ok()) << b_inst.status();
  ASSERT_TRUE(b_inst->Contains(MakeFlightsB()));
  Result<Database> c_inst = r2->mapping.Apply(*b_inst, &registry);
  ASSERT_TRUE(c_inst.ok()) << c_inst.status();
  EXPECT_TRUE(c_inst->Contains(MakeFlightsC()));
}

TEST(IntegrationTest, TdbFilesDriveDiscovery) {
  // Simulates the CLI path: write .tdb files, load them, discover.
  std::string dir = testing::TempDir();
  ASSERT_TRUE(SaveTdbFile(MakeFlightsB(), dir + "/src.tdb").ok());
  ASSERT_TRUE(SaveTdbFile(MakeFlightsA(), dir + "/tgt.tdb").ok());
  Result<Database> source = LoadTdbFile(dir + "/src.tdb");
  Result<Database> target = LoadTdbFile(dir + "/tgt.tdb");
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE(target.ok());
  TupeloOptions options;
  options.limits.max_states = 200000;
  Result<TupeloResult> r = DiscoverMapping(*source, *target, options);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->found);
}

TEST(IntegrationTest, BammDiscoveredMatchesAreCorrect) {
  // Not just cheap — *right*: the matches TUPELO reads off its discovered
  // expressions must equal the generator's ground truth exactly.
  BammWorkload w = MakeBammWorkload(BammDomain::kMusic, 77);
  TupeloOptions options;
  options.heuristic = HeuristicKind::kPairs;
  options.limits.max_states = 200000;
  size_t checked = 0;
  for (size_t i = 0; i < 12 && i < w.targets.size(); ++i) {
    Result<SchemaMatch> m =
        MatchSchemas(w.source, w.targets[i], options);
    ASSERT_TRUE(m.ok());
    ASSERT_TRUE(m->found) << "target " << i;
    const BammGroundTruth& truth = w.ground_truth[i];
    // Same number of attribute matches, and each expected pair present.
    EXPECT_EQ(m->attribute_matches.size(), truth.attribute_renames.size())
        << "target " << i;
    for (const auto& expected : truth.attribute_renames) {
      EXPECT_NE(std::find(m->attribute_matches.begin(),
                          m->attribute_matches.end(), expected),
                m->attribute_matches.end())
          << "target " << i << ": " << expected.first << "->"
          << expected.second;
    }
    if (!truth.relation_rename.empty()) {
      ASSERT_EQ(m->relation_matches.size(), 1u) << "target " << i;
      EXPECT_EQ(m->relation_matches[0].second, truth.relation_rename);
    } else {
      EXPECT_TRUE(m->relation_matches.empty()) << "target " << i;
    }
    ++checked;
  }
  EXPECT_EQ(checked, std::min<size_t>(12, w.targets.size()));
}

TEST(IntegrationTest, ProductDiscovery) {
  // A target relation spanning two source relations needs ×.
  Result<Database> source = ParseTdb(
      "relation Dim1 (A) { (a1) (a2) }\n"
      "relation Dim2 (B) { (b1) }");
  Result<Database> target = ParseTdb(
      "relation \"Dim1*Dim2\" (A, B) { (a1, b1) (a2, b1) }");
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE(target.ok());
  TupeloOptions options;
  options.limits.max_states = 100000;
  Result<TupeloResult> r = DiscoverMapping(*source, *target, options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->found);
  EXPECT_TRUE(r->verified);
  EXPECT_EQ(r->mapping.steps()[0], Op(ProductOp{"Dim1", "Dim2"}));
}

TEST(IntegrationTest, DereferenceDiscovery) {
  // The fresh target column holds t[t[Pick]] — only → can produce it.
  Result<Database> source = ParseTdb(
      "relation R (Pick, Low, High) { (Low, 10, 99) (High, 20, 88) }");
  Result<Database> target = ParseTdb(
      "relation R (Pick, Low, High, Chosen) "
      "{ (Low, 10, 99, 10) (High, 20, 88, 88) }");
  ASSERT_TRUE(source.ok());
  ASSERT_TRUE(target.ok());
  TupeloOptions options;
  options.limits.max_states = 100000;
  Result<TupeloResult> r = DiscoverMapping(*source, *target, options);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->found);
  EXPECT_TRUE(r->verified);
  EXPECT_EQ(r->mapping.steps()[0],
            Op(DereferenceOp{"R", "Pick", "Chosen"}));
}

TEST(IntegrationTest, AllAlgorithmsAgreeOnSolvability) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(3);
  for (SearchAlgorithm algo : {SearchAlgorithm::kIda, SearchAlgorithm::kRbfs,
                               SearchAlgorithm::kAStar}) {
    for (HeuristicKind h : {HeuristicKind::kH1, HeuristicKind::kCosine}) {
      TupeloOptions options;
      options.algorithm = algo;
      options.heuristic = h;
      options.limits.max_states = 500000;
      Result<TupeloResult> r =
          DiscoverMapping(pair.source, pair.target, options);
      ASSERT_TRUE(r.ok());
      EXPECT_TRUE(r->found)
          << SearchAlgorithmName(algo) << "/" << HeuristicKindName(h);
      EXPECT_EQ(r->stats.solution_cost, 3)
          << SearchAlgorithmName(algo) << "/" << HeuristicKindName(h);
    }
  }
}

}  // namespace
}  // namespace tupelo
