#ifndef TUPELO_TESTS_DIFFERENTIAL_COMMON_H_
#define TUPELO_TESTS_DIFFERENTIAL_COMMON_H_

// Shared support for the executor differential harness: the gtest suite
// (executor_equivalence_test.cc) and the seeded fuzz driver
// (tools/equivalence_fuzz.cc) both generate random expressions against
// concrete databases and check that every execution leg agrees:
//
//   interpreter            MappingExpression::Apply (op-at-a-time)
//   compiled               CompiledExecutor::Apply (fused loop IR)
//   simplify+interpreter   Simplify(expr).Apply — one-sided contract,
//                          checked only on instances where the original
//                          succeeds
//   optimize+interpreter   Optimize(expr) — exact contract: when it
//                          returns an expression, every instance yields
//                          the identical Result
//
// "Agree" is exact Result<Database> equality: ok-ness, the database's
// printed form (relation set, attribute order, tuple order, values) on
// success, and the Status code AND message on failure.

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "common/result.h"
#include "fira/compile.h"
#include "fira/executor.h"
#include "fira/expression.h"
#include "fira/function_registry.h"
#include "fira/operators.h"
#include "fira/optimizer.h"
#include "relational/database.h"

namespace tupelo {
namespace diff {

using Rng = std::mt19937_64;

// Canonical printed form of an outcome; two legs are equivalent iff their
// outcome strings are byte-identical.
inline std::string OutcomeString(const Result<Database>& r) {
  if (r.ok()) return "ok: " + r->ToString();
  return "error[" + std::to_string(static_cast<int>(r.status().code())) +
         "]: " + r.status().message();
}

// Runs every leg of the differential harness over (expr, input). Returns
// "" when all legs agree, else a description of the first divergence.
inline std::string CheckExpression(const MappingExpression& expr,
                                   const Database& input,
                                   const FunctionRegistry* registry) {
  Result<Database> interp = expr.Apply(input, registry);
  const std::string want = OutcomeString(interp);

  CompiledExecutor compiled(expr);
  const std::string got = OutcomeString(compiled.Apply(input, registry));
  if (got != want) {
    return "interpreter vs compiled divergence\n  expr: " + expr.ToScript() +
           "\n  interpreter: " + want + "\n  compiled:    " + got;
  }

  // Simplify: one-sided guarantee, so only success instances count — and
  // the simplified form must agree under BOTH executors.
  if (interp.ok()) {
    MappingExpression simplified = Simplify(expr);
    const std::string simp =
        OutcomeString(simplified.Apply(input, registry));
    if (simp != want) {
      return "simplify broke a succeeding instance\n  expr: " +
             expr.ToScript() + "\n  simplified: " + simplified.ToScript() +
             "\n  original:   " + want + "\n  simplified: " + simp;
    }
    const std::string simp_compiled =
        OutcomeString(CompiledExecutor(simplified).Apply(input, registry));
    if (simp_compiled != want) {
      return "compiled executor diverged on simplified form\n  expr: " +
             simplified.ToScript() + "\n  interpreter: " + want +
             "\n  compiled:    " + simp_compiled;
    }
  }

  // Optimize: exact contract whenever it returns an expression (today:
  // only at the simplification fixpoint, where it returns the input).
  Result<MappingExpression> optimized = Optimize(expr);
  if (optimized.ok()) {
    const std::string opt =
        OutcomeString(optimized->Apply(input, registry));
    if (opt != want) {
      return "optimize leg not failure-exact\n  expr: " + expr.ToScript() +
             "\n  original:  " + want + "\n  optimized: " + opt;
    }
  }
  return "";
}

// Fault-injector accounting parity: with a never-firing injector armed,
// interpreter and compiled execution of the same expression must consult
// it the same number of times (once per logical operator reached).
// Returns "" on parity, else a description.
inline std::string CheckInjectorParity(const MappingExpression& expr,
                                       const Database& input,
                                       const FunctionRegistry* registry) {
  FaultInjector injector;
  FaultInjector* previous = GetFaultInjector();
  SetFaultInjector(&injector);

  injector.Arm("*", Status::Internal("never fires"),
               /*skip=*/static_cast<uint64_t>(-1));
  (void)expr.Apply(input, registry);
  const uint64_t interp_consults = injector.consults();

  injector.Arm("*", Status::Internal("never fires"),
               /*skip=*/static_cast<uint64_t>(-1));
  (void)CompiledExecutor(expr).Apply(input, registry);
  const uint64_t compiled_consults = injector.consults();

  SetFaultInjector(previous);
  if (interp_consults != compiled_consults) {
    return "fault-injector consult mismatch on " + expr.ToScript() +
           ": interpreter=" + std::to_string(interp_consults) +
           " compiled=" + std::to_string(compiled_consults);
  }
  return "";
}

// ---------------------------------------------------------------------
// Random expression generation
// ---------------------------------------------------------------------

inline const std::string& Pick(Rng& rng,
                               const std::vector<std::string>& pool) {
  return pool[rng() % pool.size()];
}

// A name drawn from the pool most of the time, a (probably) bogus one
// otherwise — error paths are first-class citizens of the harness.
inline std::string PickOrBogus(Rng& rng,
                               const std::vector<std::string>& pool,
                               const char* bogus_prefix) {
  if (pool.empty() || rng() % 8 == 0) {
    return std::string(bogus_prefix) + std::to_string(rng() % 4);
  }
  return Pick(rng, pool);
}

// Builds a random expression of up to `max_len` steps against `db`,
// tracking the schema approximately as steps are appended so that later
// steps usually (not always) stay applicable. Fusable tuple-local
// operators dominate the mix; structural operators (promote, demote,
// partition, merge) appear occasionally to exercise interpreter-fallback
// segment boundaries.
inline MappingExpression RandomExpression(Rng& rng, const Database& db,
                                          const FunctionRegistry& registry,
                                          size_t max_len) {
  // Mutable shadow of the schema: relation name -> attributes. Only an
  // approximation (promote/demote outputs depend on data), which is fine:
  // inapplicable steps just exercise the error path.
  std::vector<std::pair<std::string, std::vector<std::string>>> schema;
  for (const std::string& name : db.RelationNames()) {
    Result<const Relation*> rel = db.GetRelation(name);
    if (rel.ok()) schema.emplace_back(name, (*rel)->attributes());
  }
  const std::vector<std::string> functions = registry.Names();

  std::vector<Op> steps;
  const size_t len = 1 + rng() % max_len;
  uint64_t fresh = 0;
  while (steps.size() < len && !schema.empty()) {
    auto& [rel, attrs] = schema[rng() % schema.size()];
    std::string fresh_name = "gen" + std::to_string(fresh++);
    switch (rng() % 10) {
      case 0: {  // rename_att
        if (attrs.empty()) continue;
        std::string from = PickOrBogus(rng, attrs, "noattr");
        std::string to = rng() % 8 == 0 ? PickOrBogus(rng, attrs, "noattr")
                                        : fresh_name;
        steps.push_back(RenameAttrOp{rel, from, to});
        for (std::string& a : attrs) {
          if (a == from) a = to;
        }
        break;
      }
      case 1: {  // drop
        std::string attr = PickOrBogus(rng, attrs, "noattr");
        steps.push_back(DropOp{rel, attr});
        std::erase(attrs, attr);
        break;
      }
      case 2: {  // rename_rel
        std::string to =
            rng() % 8 == 0 ? schema[rng() % schema.size()].first : fresh_name;
        steps.push_back(RenameRelOp{rel, to});
        rel = to;
        break;
      }
      case 3: {  // dereference
        steps.push_back(
            DereferenceOp{rel, PickOrBogus(rng, attrs, "noattr"),
                          fresh_name});
        attrs.push_back(fresh_name);
        break;
      }
      case 4: {  // apply λ
        if (functions.empty()) continue;
        const std::string& fn = Pick(rng, functions);
        Result<const ComplexFunction*> looked = registry.Lookup(fn);
        size_t arity = looked.ok() ? (*looked)->arity : 1;
        std::vector<std::string> inputs;
        for (size_t i = 0; i < arity; ++i) {
          inputs.push_back(PickOrBogus(rng, attrs, "noattr"));
        }
        steps.push_back(ApplyFunctionOp{rel, fn, std::move(inputs),
                                        fresh_name});
        attrs.push_back(fresh_name);
        break;
      }
      case 5: {  // product
        const std::string& right =
            schema[rng() % schema.size()].first;
        steps.push_back(ProductOp{rel, right});
        // Track the product relation so later steps can thread it.
        Result<const Relation*> l = db.GetRelation(rel);
        std::vector<std::string> combined = attrs;
        for (auto& [name, as] : schema) {
          if (name == right) {
            combined.insert(combined.end(), as.begin(), as.end());
            break;
          }
        }
        schema.emplace_back(ProductResultName(ProductOp{rel, right}),
                            std::move(combined));
        (void)l;
        break;
      }
      case 6: {  // promote (interpreter fallback)
        if (attrs.size() < 2) continue;
        steps.push_back(PromoteOp{rel, Pick(rng, attrs), Pick(rng, attrs)});
        break;
      }
      case 7: {  // demote (interpreter fallback)
        steps.push_back(DemoteOp{rel});
        attrs.push_back(kDemoteAttrColumn);
        attrs.push_back(kDemoteValueColumn);
        break;
      }
      case 8: {  // partition (interpreter fallback)
        if (attrs.empty()) continue;
        steps.push_back(PartitionOp{rel, Pick(rng, attrs)});
        break;
      }
      default: {  // merge (interpreter fallback)
        if (attrs.empty()) continue;
        steps.push_back(MergeOp{rel, Pick(rng, attrs)});
        break;
      }
    }
  }
  return MappingExpression(std::move(steps));
}

}  // namespace diff
}  // namespace tupelo

#endif  // TUPELO_TESTS_DIFFERENTIAL_COMMON_H_
