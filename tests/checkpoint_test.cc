// Checkpoint/resume: on-disk format round-trips, corruption taxonomy,
// atomic replacement, and crash-equivalence of killed-and-resumed
// discovery runs (docs/ROBUSTNESS.md, "Checkpoint & resume contract").
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "core/checkpoint.h"
#include "core/tupelo.h"
#include "fira/expression.h"
#include "fira/operators.h"
#include "relational/io.h"
#include "workloads/synthetic.h"

namespace tupelo {
namespace {

Database Tdb(const char* text) {
  Result<Database> db = ParseTdb(text);
  EXPECT_TRUE(db.ok()) << db.status();
  return std::move(db).value();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << path;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return text;
}

void WriteFileRaw(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.is_open()) << path;
  out << text;
}

// A checkpoint exercising every field, including multi-entry frontier,
// open list, and closed set.
DiscoveryCheckpoint FullCheckpoint() {
  DiscoveryCheckpoint cp;
  cp.source_fp = Fp128{0x1234, 0x5678};
  cp.target_fp = Fp128{0x9abc, 0xdef0};
  cp.algorithm = "astar";
  cp.rung_index = 1;
  cp.ladder_size = 3;
  cp.states_left = 4200;
  cp.deadline_left_millis = 1500;
  cp.states_examined = 77;
  cp.best_path = {RenameAttrOp{"R", "A", "B"}};
  cp.best_h = 2;
  cp.ida_bound = 9;
  cp.beam_depth = 4;
  cp.frontier.push_back(
      {Tdb("relation R (A) { (1) }"), {RenameAttrOp{"R", "A", "C"}}, 3});
  cp.frontier.push_back(
      {Tdb("relation S (X, Y) { (a, b) }"),
       {RenameRelOp{"R", "S"}, RenameAttrOp{"S", "X", "Z"}},
       5});
  cp.open.push_back({{RenameAttrOp{"R", "A", "D"}}, 7, 11});
  cp.open.push_back({{}, 0, 12});  // root entry: empty path
  cp.next_seq = 13;
  cp.closed.push_back({Fp128{1, 2}, 0});
  cp.closed.push_back({Fp128{3, 4}, 6});
  return cp;
}

std::string Script(const std::vector<Op>& path) {
  return MappingExpression(path).ToScript();
}

TEST(CheckpointFormatTest, RoundTripsEveryField) {
  DiscoveryCheckpoint cp = FullCheckpoint();
  std::string text = WriteCheckpoint(cp);
  Result<DiscoveryCheckpoint> back = ParseCheckpoint(text);
  ASSERT_TRUE(back.ok()) << back.status();

  EXPECT_TRUE(back->source_fp == cp.source_fp);
  EXPECT_TRUE(back->target_fp == cp.target_fp);
  EXPECT_EQ(back->algorithm, "astar");
  EXPECT_EQ(back->rung_index, 1);
  EXPECT_EQ(back->ladder_size, 3);
  EXPECT_EQ(back->states_left, 4200);
  EXPECT_EQ(back->deadline_left_millis, 1500);
  EXPECT_EQ(back->states_examined, 77u);
  EXPECT_EQ(Script(back->best_path), Script(cp.best_path));
  EXPECT_EQ(back->best_h, 2);
  EXPECT_EQ(back->ida_bound, 9);
  EXPECT_EQ(back->beam_depth, 4);

  ASSERT_EQ(back->frontier.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(back->frontier[i].state.Fingerprint128() ==
                cp.frontier[i].state.Fingerprint128());
    EXPECT_EQ(Script(back->frontier[i].path), Script(cp.frontier[i].path));
    EXPECT_EQ(back->frontier[i].h, cp.frontier[i].h);
  }
  ASSERT_EQ(back->open.size(), 2u);
  EXPECT_EQ(Script(back->open[0].path), Script(cp.open[0].path));
  EXPECT_EQ(back->open[0].key, 7);
  EXPECT_EQ(back->open[0].seq, 11u);
  EXPECT_TRUE(back->open[1].path.empty());
  EXPECT_EQ(back->open[1].seq, 12u);
  EXPECT_EQ(back->next_seq, 13u);
  ASSERT_EQ(back->closed.size(), 2u);
  EXPECT_TRUE(back->closed[0].first == cp.closed[0].first);
  EXPECT_EQ(back->closed[1].second, 6);
}

TEST(CheckpointFormatTest, SaveAndLoadFile) {
  std::string path = TempPath("roundtrip.tck");
  ASSERT_TRUE(SaveCheckpointFile(FullCheckpoint(), path).ok());
  Result<DiscoveryCheckpoint> back = LoadCheckpointFile(path);
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->algorithm, "astar");
  std::remove(path.c_str());
}

TEST(CheckpointFormatTest, MissingFileIsNotFound) {
  Result<DiscoveryCheckpoint> r =
      LoadCheckpointFile(TempPath("no_such_checkpoint.tck"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

// ---------------------------------------------------------------------------
// Corruption taxonomy: every damage class is a typed error, and a
// previously saved checkpoint is untouched by a failed replacement.
// ---------------------------------------------------------------------------

TEST(CheckpointCorruptionTest, TruncatedFileIsParseError) {
  std::string text = WriteCheckpoint(FullCheckpoint());
  std::string path = TempPath("truncated.tck");
  WriteFileRaw(path, text.substr(0, text.size() - 30));
  Result<DiscoveryCheckpoint> r = LoadCheckpointFile(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

TEST(CheckpointCorruptionTest, FlippedBitIsChecksumMismatch) {
  std::string text = WriteCheckpoint(FullCheckpoint());
  text[text.size() / 2] ^= 1;  // flip one bit in the middle of the payload
  Result<DiscoveryCheckpoint> r = ParseCheckpoint(text);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  EXPECT_NE(r.status().ToString().find("checksum mismatch"),
            std::string::npos);
}

TEST(CheckpointCorruptionTest, WrongVersionIsFailedPrecondition) {
  // A future-version file with a *valid* checksum: version gating must
  // fire, not the corruption path.
  std::string text = WriteCheckpoint(FullCheckpoint());
  size_t eol = text.find('\n');
  std::string payload = "tupelo-checkpoint 2" + text.substr(eol);
  payload.resize(payload.rfind("checksum "));
  char buf[64];
  std::snprintf(buf, sizeof(buf), "checksum %016llx:%016llx\n",
                static_cast<unsigned long long>(
                    Fnv1aSeeded(payload, kFpSeedLo)),
                static_cast<unsigned long long>(
                    Fnv1aSeeded(payload, kFpSeedHi)));
  Result<DiscoveryCheckpoint> r = ParseCheckpoint(payload + buf);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(r.status().ToString().find("unsupported checkpoint format"),
            std::string::npos);
}

TEST(CheckpointCorruptionTest, AtomicWriteReplacesWholeFileOnly) {
  std::string path = TempPath("atomic.tck");
  ASSERT_TRUE(AtomicWriteFile(path, "first contents\n").ok());
  ASSERT_TRUE(AtomicWriteFile(path, "second contents\n").ok());
  EXPECT_EQ(ReadFile(path), "second contents\n");
  // The staging file never survives a completed write.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.is_open());
  std::remove(path.c_str());
}

TEST(CheckpointCorruptionTest, FailedWriteLeavesPriorCheckpointIntact) {
  std::string path = TempPath("prior.tck");
  ASSERT_TRUE(SaveCheckpointFile(FullCheckpoint(), path).ok());
  std::string before = ReadFile(path);
  // An unwritable destination fails cleanly...
  EXPECT_FALSE(
      AtomicWriteFile(TempPath("no_such_dir/x.tck"), "data").ok());
  // ...and the prior checkpoint still parses bit-for-bit.
  EXPECT_EQ(ReadFile(path), before);
  EXPECT_TRUE(LoadCheckpointFile(path).ok());
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Resume through Tupelo::Discover
// ---------------------------------------------------------------------------

TupeloResult MustDiscover(const Tupelo& system, const TupeloOptions& options) {
  Result<TupeloResult> r = system.Discover(options);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TEST(CheckpointResumeTest, ResumeWithoutPathIsInvalidArgument) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(2);
  Tupelo system(pair.source, pair.target);
  TupeloOptions options;
  options.resume = true;
  Result<TupeloResult> r = system.Discover(options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(CheckpointResumeTest, PortfolioWithCheckpointIsFailedPrecondition) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(2);
  Tupelo system(pair.source, pair.target);
  TupeloOptions options;
  options.portfolio = true;
  options.ladder = DefaultLadder();
  options.checkpoint_path = TempPath("portfolio.tck");
  Result<TupeloResult> r = system.Discover(options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CheckpointResumeTest, ResumeFromMissingFileIsFreshStart) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(2);
  Tupelo system(pair.source, pair.target);
  std::string path = TempPath("never_written.tck");
  TupeloOptions options;
  options.checkpoint_path = path;
  options.resume = true;
  TupeloResult r = MustDiscover(system, options);
  EXPECT_TRUE(r.found);
  EXPECT_FALSE(r.resumed);
  std::remove(path.c_str());
}

TEST(CheckpointResumeTest, CheckpointFromDifferentWorkloadIsRejected) {
  SyntheticMatchingPair small = MakeSyntheticMatchingPair(2);
  SyntheticMatchingPair big = MakeSyntheticMatchingPair(4);
  std::string path = TempPath("workload_mismatch.tck");

  // Write a checkpoint from the small workload by killing a run at its
  // first checkpoint boundary.
  TupeloOptions options;
  options.checkpoint_path = path;
  options.checkpoint_interval_states = 1;
  options.checkpoint_kill_after = 1;
  Tupelo writer(small.source, small.target);
  MustDiscover(writer, options);

  TupeloOptions resume_options;
  resume_options.checkpoint_path = path;
  resume_options.resume = true;
  Tupelo other(big.source, big.target);
  Result<TupeloResult> r = other.Discover(resume_options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(r.status().ToString().find("different workload"),
            std::string::npos);
  std::remove(path.c_str());
}

// The acceptance scenario: for each of the five algorithms, a run killed
// at a checkpoint boundary and resumed must reproduce the uninterrupted
// baseline — same mapping script, same verification, same stop reason.
TEST(CheckpointResumeTest, KilledRunResumesToBaselineForEveryAlgorithm) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(4);
  const SearchAlgorithm algorithms[] = {
      SearchAlgorithm::kIda, SearchAlgorithm::kRbfs, SearchAlgorithm::kAStar,
      SearchAlgorithm::kGreedy, SearchAlgorithm::kBeam,
  };
  for (SearchAlgorithm algo : algorithms) {
    SCOPED_TRACE(std::string(SearchAlgorithmName(algo)));
    Tupelo system(pair.source, pair.target);
    TupeloOptions base;
    base.algorithm = algo;
    TupeloResult baseline = MustDiscover(system, base);
    ASSERT_TRUE(baseline.found);
    ASSERT_TRUE(baseline.verified);

    std::string path = TempPath("equiv_" +
                                std::string(SearchAlgorithmName(algo)) +
                                ".tck");
    TupeloOptions inter = base;
    inter.checkpoint_path = path;
    inter.checkpoint_interval_states = 1;  // snapshot at every poll
    inter.checkpoint_kill_after = 2;
    TupeloResult killed = MustDiscover(system, inter);
    EXPECT_GE(killed.checkpoint_writes, 1u);

    TupeloResult final_result;
    if (killed.stop_reason == StopReason::kCancelled) {
      EXPECT_FALSE(killed.found);
      TupeloOptions res = inter;
      res.checkpoint_kill_after = 0;
      res.resume = true;
      final_result = MustDiscover(system, res);
      EXPECT_TRUE(final_result.resumed);
    } else {
      // Goal reached before the injected kill could be observed; the
      // completed run must still equal the baseline.
      final_result = std::move(killed);
    }
    EXPECT_EQ(final_result.found, baseline.found);
    EXPECT_EQ(final_result.verified, baseline.verified);
    EXPECT_EQ(final_result.stop_reason, baseline.stop_reason);
    EXPECT_EQ(final_result.mapping.ToScript(), baseline.mapping.ToScript());
    std::remove(path.c_str());
  }
}

// Resume restores the remaining state budget, so kill + resume together
// respect the original max_states ceiling and reproduce the baseline's
// resource stop.
TEST(CheckpointResumeTest, ResumePreservesBudgetAccounting) {
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(8);
  Tupelo system(pair.source, pair.target);
  TupeloOptions base;
  base.algorithm = SearchAlgorithm::kAStar;
  base.limits.max_states = 5;   // below the n=8 solution depth
  base.limits.check_interval = 1;  // poll every state: the tiny budget
                                   // must still see the kill boundary
  TupeloResult baseline = MustDiscover(system, base);
  ASSERT_FALSE(baseline.found);
  ASSERT_EQ(baseline.stop_reason, StopReason::kStates);

  std::string path = TempPath("budget.tck");
  TupeloOptions inter = base;
  inter.checkpoint_path = path;
  inter.checkpoint_interval_states = 1;
  inter.checkpoint_kill_after = 2;
  TupeloResult killed = MustDiscover(system, inter);
  ASSERT_EQ(killed.stop_reason, StopReason::kCancelled);

  TupeloOptions res = inter;
  res.checkpoint_kill_after = 0;
  res.resume = true;
  TupeloResult resumed = MustDiscover(system, res);
  EXPECT_TRUE(resumed.resumed);
  EXPECT_EQ(resumed.stop_reason, StopReason::kStates);
  // The resumed leg examines only what was left of the original budget.
  EXPECT_LE(resumed.stats.states_examined, base.limits.max_states);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tupelo
