#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "relational/algebra.h"
#include "relational/io.h"

namespace tupelo {
namespace {

Relation Rel(const char* tdb, const char* name) {
  Result<Database> db = ParseTdb(tdb);
  EXPECT_TRUE(db.ok()) << db.status();
  Result<const Relation*> r = db->GetRelation(name);
  EXPECT_TRUE(r.ok()) << r.status();
  return **r;
}

// ---------------------------------------------------------------------------
// σ select
// ---------------------------------------------------------------------------

TEST(SelectTest, KeepsMatchingTuples) {
  Relation r = Rel("relation R (A, B) { (1, x) (2, y) (1, z) }", "R");
  Relation out = Select(r, AttributeEquals("A", "1"));
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out.tuples()[0], Tuple::OfAtoms({"1", "x"}));
  EXPECT_EQ(out.tuples()[1], Tuple::OfAtoms({"1", "z"}));
  EXPECT_EQ(out.name(), "R");
  EXPECT_EQ(out.attributes(), r.attributes());
}

TEST(SelectTest, MissingAttributeMatchesNothing) {
  Relation r = Rel("relation R (A) { (1) }", "R");
  EXPECT_TRUE(Select(r, AttributeEquals("Z", "1")).empty());
}

TEST(SelectTest, NullsNeverEqualAtoms) {
  Relation r = Rel("relation R (A) { (null) (1) }", "R");
  Relation out = Select(r, AttributeEquals("A", "1"));
  EXPECT_EQ(out.size(), 1u);
}

TEST(SelectTest, AttributeIsNullPredicate) {
  Relation r = Rel("relation R (A, B) { (null, x) (1, y) }", "R");
  Relation out = Select(r, AttributeIsNull("A"));
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.tuples()[0][1], Value("x"));
}

TEST(SelectTest, CustomPredicateSeesSchema) {
  Relation r = Rel("relation R (A, B) { (1, 2) (5, 3) }", "R");
  Relation out = Select(r, [](const Relation& schema, const Tuple& t) {
    size_t a = *schema.AttributeIndex("A");
    size_t b = *schema.AttributeIndex("B");
    return t[a].atom() < t[b].atom();
  });
  EXPECT_EQ(out.size(), 1u);
}

// ---------------------------------------------------------------------------
// π project
// ---------------------------------------------------------------------------

TEST(ProjectTest, ReordersColumns) {
  Relation r = Rel("relation R (A, B, C) { (1, 2, 3) }", "R");
  Result<Relation> out = Project(r, {"C", "A"});
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->attributes(), (std::vector<std::string>{"C", "A"}));
  EXPECT_EQ(out->tuples()[0], Tuple::OfAtoms({"3", "1"}));
}

TEST(ProjectTest, KeepsDuplicatesBagSemantics) {
  Relation r = Rel("relation R (A, B) { (1, x) (1, y) }", "R");
  Result<Relation> out = Project(r, {"A"});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
}

TEST(ProjectTest, MissingAttributeFails) {
  Relation r = Rel("relation R (A) { (1) }", "R");
  EXPECT_FALSE(Project(r, {"Z"}).ok());
}

// ---------------------------------------------------------------------------
// ∪ / − union & difference
// ---------------------------------------------------------------------------

TEST(UnionTest, ConcatenatesBags) {
  Relation a = Rel("relation R (A) { (1) (2) }", "R");
  Relation b = Rel("relation R (A) { (2) (3) }", "R");
  Result<Relation> out = Union(a, b);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 4u);
}

TEST(UnionTest, SchemaMismatchFails) {
  Relation a = Rel("relation R (A) { (1) }", "R");
  Relation b = Rel("relation R (B) { (1) }", "R");
  EXPECT_FALSE(Union(a, b).ok());
  // Attribute order matters too (named perspective, positional storage).
  Relation c = Rel("relation R (A, B) { (1, 2) }", "R");
  Relation d = Rel("relation R (B, A) { (2, 1) }", "R");
  EXPECT_FALSE(Union(c, d).ok());
}

TEST(DifferenceTest, BagDifferenceCancelsPerOccurrence) {
  Relation a = Rel("relation R (A) { (1) (1) (2) }", "R");
  Relation b = Rel("relation R (A) { (1) }", "R");
  Result<Relation> out = Difference(a, b);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 2u);  // one 1 and the 2 survive
  EXPECT_EQ(out->tuples()[0], Tuple::OfAtoms({"1"}));
  EXPECT_EQ(out->tuples()[1], Tuple::OfAtoms({"2"}));
}

TEST(DifferenceTest, DisjointLeavesLeftIntact) {
  Relation a = Rel("relation R (A) { (1) }", "R");
  Relation b = Rel("relation R (A) { (9) }", "R");
  Result<Relation> out = Difference(a, b);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->ContentsEqual(a));
}

// ---------------------------------------------------------------------------
// ⨝ natural join
// ---------------------------------------------------------------------------

TEST(NaturalJoinTest, JoinsOnSharedAttributes) {
  Relation emp = Rel("relation Emp (Name, Dept) { (ada, d1) (bob, d2) }",
                     "Emp");
  Relation dept = Rel("relation Dept (Dept, Floor) { (d1, 3) (d2, 5) }",
                      "Dept");
  Result<Relation> out = NaturalJoin(emp, dept);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->attributes(),
            (std::vector<std::string>{"Name", "Dept", "Floor"}));
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ(out->tuples()[0], Tuple::OfAtoms({"ada", "d1", "3"}));
  EXPECT_EQ(out->name(), "Emp⨝Dept");
}

TEST(NaturalJoinTest, NoSharedAttributesIsCartesian) {
  Relation a = Rel("relation A (X) { (1) (2) }", "A");
  Relation b = Rel("relation B (Y) { (p) (q) }", "B");
  Result<Relation> out = NaturalJoin(a, b);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 4u);
}

TEST(NaturalJoinTest, NullKeysNeverJoin) {
  Relation a = Rel("relation A (K, X) { (null, 1) (k, 2) }", "A");
  Relation b = Rel("relation B (K, Y) { (null, p) (k, q) }", "B");
  Result<Relation> out = NaturalJoin(a, b);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->tuples()[0], Tuple::OfAtoms({"k", "2", "q"}));
}

TEST(NaturalJoinTest, MultipleSharedAttributes) {
  Relation a = Rel("relation A (K1, K2, X) { (1, 2, x) (1, 3, y) }", "A");
  Relation b = Rel("relation B (K1, K2, Y) { (1, 2, p) }", "B");
  Result<Relation> out = NaturalJoin(a, b);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ(out->tuples()[0], Tuple::OfAtoms({"1", "2", "x", "p"}));
}

// ---------------------------------------------------------------------------
// Distinct
// ---------------------------------------------------------------------------

TEST(DistinctTest, RemovesDuplicates) {
  Relation r = Rel("relation R (A, B) { (1, x) (1, x) (1, y) }", "R");
  Relation out = Distinct(r);
  EXPECT_EQ(out.size(), 2u);
}

TEST(DistinctTest, NullsCompareEqual) {
  Relation r = Rel("relation R (A) { (null) (null) }", "R");
  EXPECT_EQ(Distinct(r).size(), 1u);
}

TEST(AlgebraCompositionTest, SelectProjectJoinPipeline) {
  // A small end-to-end query: employees on floor 3.
  Relation emp = Rel(
      "relation Emp (Name, Dept) { (ada, d1) (bob, d2) (eve, d1) }", "Emp");
  Relation dept = Rel("relation Dept (Dept, Floor) { (d1, 3) (d2, 5) }",
                      "Dept");
  Result<Relation> joined = NaturalJoin(emp, dept);
  ASSERT_TRUE(joined.ok());
  Relation floor3 = Select(*joined, AttributeEquals("Floor", "3"));
  Result<Relation> names = Project(floor3, {"Name"});
  ASSERT_TRUE(names.ok());
  ASSERT_EQ(names->size(), 2u);
  EXPECT_EQ(names->tuples()[0], Tuple::OfAtoms({"ada"}));
  EXPECT_EQ(names->tuples()[1], Tuple::OfAtoms({"eve"}));
}

}  // namespace
}  // namespace tupelo
