// fault_campaign: seeded robustness campaign over the fig5 --quick
// workload. Each trial draws a workload size, a search algorithm, and a
// fault scenario from a deterministic per-trial RNG, runs discovery, and
// asserts the robustness invariants of docs/ROBUSTNESS.md:
//
//   - clean status propagation: no trial may crash or surface an
//     unexpected error from Tupelo::Discover;
//   - checkpoint integrity: every checkpoint file left behind by a trial
//     must reload through LoadCheckpointFile (which validates every
//     embedded database);
//   - crash-equivalence: a run killed at a checkpoint boundary and
//     resumed must reproduce the uninterrupted baseline's mapping,
//     verification outcome, and stop reason.
//
// Trial families (cycled so every family gets coverage):
//   0  kill-and-resume crash-equivalence (no operator faults)
//   1  seeded-probabilistic operator faults ("*", p in [0.05, 0.35])
//   2  every-Nth operator faults ("*", n in [2, 9])
//   3  mixed: operator faults + kill at a checkpoint boundary + resume
//      with faults cleared (invariants only; faults perturb the explored
//      space, so equivalence with a clean baseline is not expected)
//
// Chaos families (the self-healing runtime of runtime/supervisor.h; all
// run with the supervisor enabled and add its invariants — a supervised
// trial must still end in a clean status, and a watchdog-recovered run
// must reproduce the clean baseline where equivalence is well-defined):
//   4  transient stall: a one-shot injected operator delay wedges the
//      rung far past the stall window; the watchdog preempts
//      (StopReason::kStalled), the retry runs fault-free and must match
//      the unfaulted baseline's mapping/verification exactly
//   5  poison states: operator faults that *throw* (runtime_error or
//      bad_alloc); the quarantine absorbs them and the run must end
//      cleanly (never crash, never a Discover-level error)
//   6  memory pressure: a tiny max_memory_nodes bound under supervision;
//      staged degradation (cache trims, width trims) and/or a clean
//      memory stop — never a crash
//   7  mixed chaos: throwing/delaying/status faults + a checkpoint-kill
//      + supervision, then a fault-free resume; invariants only (clean
//      statuses + checkpoint integrity)
//
// Compiled-executor families (the fused CompiledExecutor of
// fira/compile.h driving Expand via SuccessorConfig::compiled_expand;
// the backend switch is outcome-identical by contract, so every
// invariant above must hold unchanged under it):
//   8  compiled kill-and-resume: family 0's crash-equivalence with
//      compiled_expand on for the baseline, the killed run, and the
//      resume
//   9  compiled poison: family 5's throwing-fault quarantine with
//      compiled_expand on — the injector seam sits below the fused
//      loops, so thrown faults must still be absorbed cleanly
//
// Service-level families (the discovery service of serve/job_manager.h;
// in-process JobManager trials — the full-process kill -9 variant runs
// in serve_loadgen and the serve_smoke ctest):
//   10 serve-crash: submit a batch of jobs (some unsatisfiable so they
//      run their whole deadline), preempt the manager mid-flight, then
//      recover a fresh manager on the same journal directory. Graceful
//      preemption and kill -9 share one recovery path (in-flight jobs
//      keep a `.job` with no `.done`), so this asserts the crash
//      contract: every accepted job reaches a terminal state after the
//      restart, none with a Discover-level error
//   11 serve-overload: a one-worker manager with a tiny admission queue
//      under a submit burst. Sheds must be typed (accepted=false with a
//      positive Retry-After hint), the queue must stay bounded, and
//      every accepted job must still reach a terminal state — never
//      accepted-then-dropped
//
// Usage:
//   fault_campaign [--trials=N] [--seed=S] [--quick] [--json=report.json]
//                  [--trial=N] [--list]
//
// --trial=N reruns exactly one trial (same seed derivation as the full
// campaign, so a violation reported as "trial 137" replays with
// --trial=137); --list prints the deterministic trial plan (family,
// workload size, algorithm per trial) without running anything.
//
// Every trial also records into a small per-trial TraceSession with the
// flight recorder armed: a trial that is killed, stops for a bad reason,
// or absorbs injected faults leaves a binary last-events dump
// (fault_campaign_<seed>_<trial>.flight, next to the campaign JSON when
// --json= is given), and the campaign immediately reloads each dump
// through ParseFlightRecord — an unparseable dump is itself a violation.
//
// Exits non-zero if any invariant is violated; the --json report follows
// the schema-6 bench layout (scripts/check_bench_json.py) with one run
// per trial plus a "summary" panel.

#include <unistd.h>

#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/hash.h"
#include "core/checkpoint.h"
#include "core/tupelo.h"
#include "fira/executor.h"
#include "obs/trace.h"
#include "relational/io.h"
#include "serve/job_manager.h"
#include "workloads/synthetic.h"

namespace tupelo {
namespace {

// Counter-keyed deterministic RNG: every draw is a pure function of
// (seed, counter), so a campaign replays bit-for-bit from its seed.
struct Rng {
  uint64_t seed = 0;
  uint64_t counter = 0;
  uint64_t Next() { return Mix64(seed ^ Mix64(++counter)); }
  uint64_t Below(uint64_t n) { return Next() % n; }
  double Unit() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }
};

// One Discover call, measured. Unlike bench::Measure this never exits:
// campaign trials must observe configuration errors as data.
struct TrialRun {
  bool ok = false;          // Discover returned a value (any outcome)
  std::string error;        // status text when !ok
  TupeloResult result;      // valid when ok
  bench::RunResult rr;      // measurement fields for the JSON report
};

TrialRun RunOnce(const SyntheticMatchingPair& pair,
                 const TupeloOptions& options) {
  Tupelo system(pair.source, pair.target);
  auto start = std::chrono::steady_clock::now();
  Result<TupeloResult> r = system.Discover(options);
  auto end = std::chrono::steady_clock::now();

  TrialRun out;
  out.rr.millis =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          end - start)
          .count();
  if (!r.ok()) {
    out.error = r.status().ToString();
    return out;
  }
  out.ok = true;
  out.result = *std::move(r);
  out.rr.found = out.result.found;
  out.rr.cutoff = out.result.budget_exhausted;
  out.rr.stop_reason = std::string(StopReasonName(out.result.stop_reason));
  out.rr.verified = out.result.verified;
  if (!out.result.verify_status.ok()) {
    out.rr.verify_error = out.result.verify_status.ToString();
  }
  out.rr.deadline_millis = options.limits.deadline_millis;
  out.rr.states = out.result.stats.states_examined;
  out.rr.states_generated = out.result.stats.states_generated;
  out.rr.iterations = out.result.stats.iterations;
  out.rr.peak_memory_nodes = out.result.stats.peak_memory_nodes;
  out.rr.depth = out.result.stats.solution_cost;
  out.rr.resumed = out.result.resumed;
  out.rr.checkpoint_writes = out.result.checkpoint_writes;
  return out;
}

struct Campaign {
  uint64_t trials = 160;
  uint64_t violations = 0;
  uint64_t kills = 0;
  uint64_t resumes = 0;
  uint64_t faults_injected = 0;
  uint64_t flight_dumps = 0;
  // Self-healing interventions observed across the chaos families.
  uint64_t stall_preemptions = 0;
  uint64_t memory_reliefs = 0;
  uint64_t rung_retries = 0;
  uint64_t states_quarantined = 0;

  void Violation(uint64_t trial, const std::string& what) {
    ++violations;
    std::fprintf(stderr, "VIOLATION trial %llu: %s\n",
                 static_cast<unsigned long long>(trial), what.c_str());
  }
};

constexpr SearchAlgorithm kAlgorithms[] = {
    SearchAlgorithm::kIda, SearchAlgorithm::kRbfs, SearchAlgorithm::kAStar,
    SearchAlgorithm::kGreedy, SearchAlgorithm::kBeam,
};

constexpr int kFamilies = 12;
constexpr const char* kFamilyNames[kFamilies] = {
    "kill-resume",      "probabilistic-faults", "every-nth-faults",
    "mixed-kill",       "stall",                "poison",
    "memory-pressure",  "mixed-chaos",          "compiled-kill-resume",
    "compiled-poison",  "serve-crash",          "serve-overload",
};

// Perturbs every tuple value (a1 → z1, ...) so no mapping exists: the
// served search burns its whole deadline, which is what puts jobs
// in-flight when the preemption lands.
std::string PerturbValues(const std::string& tdb) {
  std::string out;
  out.reserve(tdb.size());
  for (size_t i = 0; i < tdb.size(); ++i) {
    out.push_back(tdb[i] == 'a' && i + 1 < tdb.size() &&
                          std::isdigit(static_cast<unsigned char>(tdb[i + 1]))
                      ? 'z'
                      : tdb[i]);
  }
  return out;
}

// Removes one job's journal triple; RemoveServeJournal then drops the
// directory itself once every trial job is gone.
void RemoveJobJournal(const std::string& dir, const std::string& id) {
  std::remove((dir + "/" + id + ".job").c_str());
  std::remove((dir + "/" + id + ".tck").c_str());
  std::remove((dir + "/" + id + ".done").c_str());
}

// The supervision knobs the chaos families run under: a fast watchdog
// (5 ms ticks, 50 ms stall window) so injected 200+ ms delays are
// preempted promptly, with one backed-off retry.
runtime::SupervisorConfig ChaosSupervision() {
  runtime::SupervisorConfig config;
  config.enabled = true;
  config.tick_millis = 5;
  config.stall_window_millis = 50;
  config.max_rung_retries = 2;
  config.retry_backoff_millis = 5;
  return config;
}

}  // namespace
}  // namespace tupelo

int main(int argc, char** argv) {
  using namespace tupelo;

  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv, 10000);
  Campaign campaign;
  int64_t only_trial = -1;
  bool list_only = false;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--trials=", 0) == 0) {
      campaign.trials = std::strtoull(argv[i] + std::strlen("--trials="),
                                      nullptr, 10);
    } else if (arg.rfind("--trial=", 0) == 0) {
      only_trial = std::strtoll(argv[i] + std::strlen("--trial="),
                                nullptr, 10);
    } else if (arg == "--list") {
      list_only = true;
    }
  }
  if (only_trial >= 0 &&
      static_cast<uint64_t>(only_trial) >= campaign.trials) {
    campaign.trials = static_cast<uint64_t>(only_trial) + 1;
  }

  std::vector<size_t> sizes = args.quick ? std::vector<size_t>{2, 4}
                                         : std::vector<size_t>{2, 4, 8};
  std::vector<SyntheticMatchingPair> pairs;
  pairs.reserve(sizes.size());
  for (size_t n : sizes) pairs.push_back(MakeSyntheticMatchingPair(n));

  FaultInjector injector;
  SetFaultInjector(&injector);

  bench::BenchReport report("fault_campaign", args);
  report.BeginPanel("campaign");

  // Flight dumps land next to the campaign JSON (in the cwd when no
  // --json= was given).
  std::string flight_dir;
  if (size_t slash = args.json_path.rfind('/');
      !args.json_path.empty() && slash != std::string::npos) {
    flight_dir = args.json_path.substr(0, slash + 1);
  }

  uint64_t trials_run = 0;
  for (uint64_t t = 0; t < campaign.trials; ++t) {
    Rng rng{args.seed + t * 0x9e3779b97f4a7c15ULL};
    const int family = static_cast<int>(t % kFamilies);
    const size_t which = rng.Below(pairs.size());
    const SyntheticMatchingPair& pair = pairs[which];
    const SearchAlgorithm algo = kAlgorithms[rng.Below(5)];

    if (list_only) {
      std::printf("trial %4llu: family %d (%s), n=%llu, algo=%s\n",
                  static_cast<unsigned long long>(t), family,
                  kFamilyNames[family],
                  static_cast<unsigned long long>(sizes[which]),
                  std::string(SearchAlgorithmName(algo)).c_str());
      continue;
    }
    if (only_trial >= 0 && t != static_cast<uint64_t>(only_trial)) continue;
    ++trials_run;

    TupeloOptions base;
    base.algorithm = algo;
    base.heuristic = HeuristicKind::kH1;
    base.limits.max_states = args.budget;

    const std::string ckpt_path =
        "fault_campaign_" + std::to_string(args.seed) + "_" +
        std::to_string(t) + ".tck";

    // Every trial records into its own small session with the flight
    // recorder armed: kills, bad stops, and injected faults leave a
    // last-events dump the campaign then self-checks.
    const std::string flight_path =
        flight_dir + "fault_campaign_" + std::to_string(args.seed) + "_" +
        std::to_string(t) + ".flight";
    std::remove(flight_path.c_str());
    obs::TraceSession trace(64);
    base.trace = &trace;
    base.flight_recorder_path = flight_path;

    injector.Disarm();
    TrialRun final_run;

    // Families 8/9 rerun the kill-resume and poison bodies with the fused
    // CompiledExecutor driving Expand; the backend is outcome-identical by
    // contract, so the trial logic is shared verbatim with families 0/5.
    const int behavior = family == 8 ? 0 : family == 9 ? 5 : family;
    if (family == 8 || family == 9) base.successors.compiled_expand = true;

    if (behavior == 0) {
      // Crash-equivalence: baseline, then kill at a checkpoint boundary,
      // then resume; the resumed run must match the baseline exactly.
      TrialRun baseline = RunOnce(pair, base);
      if (!baseline.ok) {
        campaign.Violation(t, "baseline error: " + baseline.error);
        continue;
      }
      TupeloOptions inter = base;
      inter.checkpoint_path = ckpt_path;
      inter.checkpoint_interval_states = 1 + rng.Below(32);
      inter.checkpoint_kill_after = 1 + rng.Below(3);
      TrialRun interrupted = RunOnce(pair, inter);
      if (!interrupted.ok) {
        campaign.Violation(t, "interrupted run error: " + interrupted.error);
        std::remove(ckpt_path.c_str());
        continue;
      }
      if (interrupted.result.stop_reason == StopReason::kCancelled) {
        ++campaign.kills;
        TupeloOptions res = inter;
        res.checkpoint_kill_after = 0;
        res.resume = true;
        final_run = RunOnce(pair, res);
        if (!final_run.ok) {
          campaign.Violation(t, "resume error: " + final_run.error);
          std::remove(ckpt_path.c_str());
          continue;
        }
        ++campaign.resumes;
      } else {
        // The search finished before the kill could take effect (tiny
        // workloads can reach the goal before a cancellation poll); the
        // completed run itself must match the baseline.
        final_run = std::move(interrupted);
      }
      if (final_run.result.found != baseline.result.found ||
          final_run.result.verified != baseline.result.verified ||
          final_run.result.stop_reason != baseline.result.stop_reason ||
          final_run.result.mapping.ToScript() !=
              baseline.result.mapping.ToScript()) {
        campaign.Violation(
            t, "crash-equivalence failure (" +
                   std::string(SearchAlgorithmName(algo)) + ", n=" +
                   std::to_string(sizes[which]) + "): baseline " +
                   std::string(StopReasonName(baseline.result.stop_reason)) +
                   " vs resumed " +
                   std::string(StopReasonName(final_run.result.stop_reason)));
      }
      std::remove(ckpt_path.c_str());
    } else if (behavior == 1 || behavior == 2) {
      // Operator faults only: discovery must degrade to a clean outcome
      // (found with possibly-failed verification, or a conclusive /
      // budget stop) — never crash, never a Discover-level error.
      Status fault = rng.Below(2) == 0
                         ? Status::Internal("campaign fault")
                         : Status::ResourceExhausted("campaign fault");
      if (behavior == 1) {
        injector.ArmProbabilistic("*", std::move(fault),
                                  0.05 + 0.3 * rng.Unit(), rng.Next());
      } else {
        injector.ArmEveryNth("*", std::move(fault), 2 + rng.Below(8));
      }
      final_run = RunOnce(pair, base);
      campaign.faults_injected += injector.injected();
      injector.Disarm();
      if (!final_run.ok) {
        campaign.Violation(t, "fault trial error: " + final_run.error);
        continue;
      }
      if (final_run.result.found && final_run.result.verified &&
          !final_run.result.verify_status.ok()) {
        campaign.Violation(t, "verified=true with a failed verify_status");
      }
    } else if (behavior == 3) {
      // Mixed: operator faults while checkpointing with a kill, then a
      // fault-free resume. Faults perturb the explored space, so only the
      // invariants are asserted: clean statuses and checkpoint integrity.
      Status fault = rng.Below(2) == 0
                         ? Status::Internal("campaign fault")
                         : Status::ResourceExhausted("campaign fault");
      if (rng.Below(2) == 0) {
        injector.ArmProbabilistic("*", std::move(fault),
                                  0.05 + 0.3 * rng.Unit(), rng.Next());
      } else {
        injector.ArmEveryNth("*", std::move(fault), 2 + rng.Below(8));
      }
      TupeloOptions inter = base;
      inter.checkpoint_path = ckpt_path;
      inter.checkpoint_interval_states = 1 + rng.Below(32);
      inter.checkpoint_kill_after = 1 + rng.Below(3);
      TrialRun interrupted = RunOnce(pair, inter);
      campaign.faults_injected += injector.injected();
      injector.Disarm();
      if (!interrupted.ok) {
        campaign.Violation(t, "faulted interrupted run error: " +
                                  interrupted.error);
        std::remove(ckpt_path.c_str());
        continue;
      }
      // Whatever the run left on disk must reload cleanly (checkpointing
      // always writes at least the rung-entry snapshot).
      Result<DiscoveryCheckpoint> reloaded = LoadCheckpointFile(ckpt_path);
      if (!reloaded.ok()) {
        campaign.Violation(t, "checkpoint integrity failure: " +
                                  reloaded.status().ToString());
        std::remove(ckpt_path.c_str());
        continue;
      }
      if (interrupted.result.stop_reason == StopReason::kCancelled) {
        ++campaign.kills;
        TupeloOptions res = inter;
        res.checkpoint_kill_after = 0;
        res.resume = true;
        final_run = RunOnce(pair, res);
        if (!final_run.ok) {
          campaign.Violation(t, "fault-free resume error: " +
                                    final_run.error);
          std::remove(ckpt_path.c_str());
          continue;
        }
        ++campaign.resumes;
      } else {
        final_run = std::move(interrupted);
      }
      std::remove(ckpt_path.c_str());
    } else if (behavior == 4) {
      // Transient stall: one injected operator delay (~4-7x the stall
      // window) wedges the rung; the watchdog must preempt it and the
      // fault-free retry must reproduce the clean baseline exactly.
      TrialRun baseline = RunOnce(pair, base);
      if (!baseline.ok) {
        campaign.Violation(t, "stall baseline error: " + baseline.error);
        continue;
      }
      TupeloOptions sup = base;
      sup.supervisor = ChaosSupervision();
      injector.ArmEveryNth("*", Status::Internal("chaos stall"),
                           2 + rng.Below(4));
      injector.SetKind(FaultInjector::Kind::kDelay,
                       static_cast<int64_t>(200 + rng.Below(150)));
      injector.SetMaxFires(1);
      final_run = RunOnce(pair, sup);
      campaign.faults_injected += injector.injected();
      injector.Disarm();
      if (!final_run.ok) {
        campaign.Violation(t, "stall trial error: " + final_run.error);
        continue;
      }
      campaign.stall_preemptions += final_run.result.stall_preemptions;
      campaign.rung_retries += final_run.result.rung_retries;
      if (final_run.result.found != baseline.result.found ||
          final_run.result.verified != baseline.result.verified ||
          final_run.result.mapping.ToScript() !=
              baseline.result.mapping.ToScript()) {
        campaign.Violation(
            t, "stall-recovery equivalence failure (" +
                   std::string(SearchAlgorithmName(algo)) + ", n=" +
                   std::to_string(sizes[which]) + "): baseline " +
                   std::string(StopReasonName(baseline.result.stop_reason)) +
                   " vs recovered " +
                   std::string(StopReasonName(final_run.result.stop_reason)));
      }
    } else if (behavior == 5) {
      // Poison states: throwing operator faults under supervision. The
      // quarantine must absorb every escaped exception; the run must end
      // in a clean status whatever the outcome.
      TupeloOptions sup = base;
      sup.supervisor = ChaosSupervision();
      Status fault = Status::Internal("chaos poison");
      if (rng.Below(2) == 0) {
        injector.ArmProbabilistic("*", std::move(fault),
                                  0.05 + 0.25 * rng.Unit(), rng.Next());
      } else {
        injector.ArmEveryNth("*", std::move(fault), 2 + rng.Below(8));
      }
      injector.SetKind(rng.Below(2) == 0 ? FaultInjector::Kind::kThrow
                                         : FaultInjector::Kind::kBadAlloc);
      final_run = RunOnce(pair, sup);
      campaign.faults_injected += injector.injected();
      injector.Disarm();
      if (!final_run.ok) {
        campaign.Violation(t, "poison trial error: " + final_run.error);
        continue;
      }
      campaign.states_quarantined += final_run.result.states_quarantined;
      if (final_run.result.found && final_run.result.verified &&
          !final_run.result.verify_status.ok()) {
        campaign.Violation(t, "verified=true with a failed verify_status");
      }
    } else if (behavior == 6) {
      // Memory pressure: a tiny node bound under supervision. Staged
      // degradation (cache trims, width trims) and/or a clean memory
      // stop are all acceptable; a crash or error status is not.
      TupeloOptions sup = base;
      sup.supervisor = ChaosSupervision();
      sup.supervisor.tick_millis = 2;
      sup.limits.max_memory_nodes = 24 + rng.Below(64);
      final_run = RunOnce(pair, sup);
      if (!final_run.ok) {
        campaign.Violation(t, "memory trial error: " + final_run.error);
        continue;
      }
      campaign.memory_reliefs += final_run.result.memory_reliefs;
      if (final_run.result.found && final_run.result.verified &&
          !final_run.result.verify_status.ok()) {
        campaign.Violation(t, "verified=true with a failed verify_status");
      }
    } else if (behavior == 7) {
      // Mixed chaos: a random fault kind (throwing, delaying, or status)
      // while checkpointing with a kill under supervision, then a
      // fault-free supervised resume. Invariants only: clean statuses
      // and checkpoint integrity.
      TupeloOptions sup = base;
      sup.supervisor = ChaosSupervision();
      Status fault = Status::Internal("chaos mixed");
      switch (rng.Below(3)) {
        case 0:
          injector.ArmProbabilistic("*", std::move(fault),
                                    0.05 + 0.2 * rng.Unit(), rng.Next());
          injector.SetKind(FaultInjector::Kind::kThrow);
          break;
        case 1:
          injector.ArmEveryNth("*", std::move(fault), 2 + rng.Below(6));
          break;
        default:
          injector.ArmEveryNth("*", std::move(fault), 2 + rng.Below(4));
          injector.SetKind(FaultInjector::Kind::kDelay,
                           static_cast<int64_t>(120 + rng.Below(120)));
          injector.SetMaxFires(1);
          break;
      }
      TupeloOptions inter = sup;
      inter.checkpoint_path = ckpt_path;
      inter.checkpoint_interval_states = 1 + rng.Below(32);
      inter.checkpoint_kill_after = 1 + rng.Below(3);
      TrialRun interrupted = RunOnce(pair, inter);
      campaign.faults_injected += injector.injected();
      injector.Disarm();
      if (!interrupted.ok) {
        campaign.Violation(t, "chaos interrupted run error: " +
                                  interrupted.error);
        std::remove(ckpt_path.c_str());
        continue;
      }
      campaign.stall_preemptions += interrupted.result.stall_preemptions;
      campaign.rung_retries += interrupted.result.rung_retries;
      campaign.states_quarantined += interrupted.result.states_quarantined;
      Result<DiscoveryCheckpoint> reloaded = LoadCheckpointFile(ckpt_path);
      if (!reloaded.ok()) {
        campaign.Violation(t, "checkpoint integrity failure: " +
                                  reloaded.status().ToString());
        std::remove(ckpt_path.c_str());
        continue;
      }
      if (interrupted.result.stop_reason == StopReason::kCancelled) {
        ++campaign.kills;
        TupeloOptions res = inter;
        res.checkpoint_kill_after = 0;
        res.resume = true;
        final_run = RunOnce(pair, res);
        if (!final_run.ok) {
          campaign.Violation(t, "chaos resume error: " + final_run.error);
          std::remove(ckpt_path.c_str());
          continue;
        }
        ++campaign.resumes;
      } else {
        final_run = std::move(interrupted);
      }
      std::remove(ckpt_path.c_str());
    }

    if (behavior == 10) {
      // serve-crash: preempt a live JobManager mid-flight, recover a
      // fresh one on the same journal, and require every accepted job to
      // reach a clean terminal state. Preemption leaves in-flight jobs
      // un-terminal on disk, which is exactly the kill -9 state.
      const std::string jdir = "fault_campaign_serve_" +
                               std::to_string(args.seed) + "_" +
                               std::to_string(t);
      serve::JobManagerConfig jc;
      jc.journal_dir = jdir;
      jc.workers = 2;
      jc.default_deadline_millis = 1000;
      jc.max_deadline_millis = 2000;
      jc.checkpoint_interval_states = 16;
      jc.trace = &trace;
      std::vector<std::string> ids;
      bool setup_ok = true;
      {
        serve::JobManager manager(jc);
        Status started = manager.Start();
        if (!started.ok()) {
          campaign.Violation(t, "serve start error: " + started.ToString());
          continue;
        }
        for (int j = 0; j < 4; ++j) {
          const SyntheticMatchingPair& p = pairs[rng.Below(pairs.size())];
          serve::JobSpec spec;
          spec.tenant = "trial-" + std::to_string(t);
          spec.source_tdb = WriteTdb(p.source);
          spec.target_tdb = WriteTdb(p.target);
          if (j % 2 == 1) {
            spec.target_tdb = PerturbValues(spec.target_tdb);
            spec.deadline_millis = 300 + static_cast<int64_t>(rng.Below(300));
          }
          Result<serve::SubmitOutcome> outcome = manager.Submit(std::move(spec));
          if (!outcome.ok() || !outcome->accepted) {
            campaign.Violation(t, "serve submit rejected: " +
                                      (outcome.ok()
                                           ? "shed with empty queue"
                                           : outcome.status().ToString()));
            setup_ok = false;
            break;
          }
          ids.push_back(outcome->job_id);
        }
        // Let the workers pick jobs up, then preempt mid-flight.
        std::this_thread::sleep_for(
            std::chrono::milliseconds(20 + rng.Below(80)));
        manager.Shutdown();
        ++campaign.kills;
      }
      if (setup_ok) {
        serve::JobManager recovered(jc);
        Status restarted = recovered.Start();
        if (!restarted.ok()) {
          campaign.Violation(t,
                             "serve recovery error: " + restarted.ToString());
        } else {
          uint64_t states_total = 0;
          for (const std::string& id : ids) {
            Result<serve::JobStatus> status = recovered.WaitTerminal(id, 8000);
            if (!status.ok() ||
                status->state != serve::JobState::kDone) {
              campaign.Violation(
                  t, "serve job " + id + " lost across restart: " +
                         (status.ok() ? "still " +
                                            std::string(JobStateName(
                                                status->state))
                                      : status.status().ToString()));
              continue;
            }
            if (status->stop_reason == "error") {
              campaign.Violation(t, "serve job " + id + " errored: " +
                                        status->partial_script);
            }
            if (status->resumed) ++campaign.resumes;
            states_total += status->states_examined;
            final_run.rr.millis += status->total_millis;
          }
          final_run.ok = true;
          final_run.rr.states = states_total;
          final_run.rr.stop_reason = "exhausted";
          recovered.Shutdown();
        }
      }
      for (const std::string& id : ids) RemoveJobJournal(jdir, id);
      ::rmdir(jdir.c_str());
    }

    if (behavior == 11) {
      // serve-overload: a one-worker manager with a two-deep admission
      // queue under a burst of deadline-long jobs. Sheds must be typed
      // with a positive Retry-After; accepted jobs must all finish.
      const std::string jdir = "fault_campaign_serve_" +
                               std::to_string(args.seed) + "_" +
                               std::to_string(t);
      serve::JobManagerConfig jc;
      jc.journal_dir = jdir;
      jc.workers = 1;
      jc.queue_limit = 2;
      jc.default_deadline_millis = 200;
      jc.max_deadline_millis = 400;
      jc.checkpoint_interval_states = 64;
      jc.trace = &trace;
      serve::JobManager manager(jc);
      Status started = manager.Start();
      if (!started.ok()) {
        campaign.Violation(t, "serve start error: " + started.ToString());
        continue;
      }
      std::vector<std::string> ids;
      size_t sheds = 0;
      for (int j = 0; j < 6; ++j) {
        const SyntheticMatchingPair& p = pairs[rng.Below(pairs.size())];
        serve::JobSpec spec;
        spec.tenant = "trial-" + std::to_string(t);
        spec.source_tdb = WriteTdb(p.source);
        spec.target_tdb = PerturbValues(WriteTdb(p.target));
        spec.deadline_millis = 200;
        Result<serve::SubmitOutcome> outcome = manager.Submit(std::move(spec));
        if (!outcome.ok()) {
          campaign.Violation(t,
                             "serve submit error: " + outcome.status().ToString());
          continue;
        }
        if (outcome->queue_depth > jc.queue_limit) {
          campaign.Violation(
              t, "serve queue depth " + std::to_string(outcome->queue_depth) +
                     " exceeds limit " + std::to_string(jc.queue_limit));
        }
        if (outcome->accepted) {
          ids.push_back(outcome->job_id);
        } else {
          ++sheds;
          if (outcome->retry_after_millis <= 0) {
            campaign.Violation(t, "serve shed without a Retry-After hint");
          }
        }
      }
      uint64_t states_total = 0;
      for (const std::string& id : ids) {
        Result<serve::JobStatus> status = manager.WaitTerminal(id, 8000);
        if (!status.ok() || status->state != serve::JobState::kDone) {
          campaign.Violation(t, "serve accepted job " + id +
                                    " never reached a terminal state");
          continue;
        }
        states_total += status->states_examined;
        final_run.rr.millis += status->total_millis;
      }
      manager.Shutdown();
      campaign.faults_injected += sheds;
      final_run.ok = true;
      final_run.rr.states = states_total;
      final_run.rr.stop_reason = "exhausted";
      for (const std::string& id : ids) RemoveJobJournal(jdir, id);
      ::rmdir(jdir.c_str());
    }

    // Flight-recorder self-check: any dump this trial left behind must
    // reload cleanly through the binary parser — a corrupt dump is
    // itself a violation.
    bool dumped = false;
    if (std::FILE* f = std::fopen(flight_path.c_str(), "rb"); f != nullptr) {
      std::fclose(f);
      dumped = true;
      ++campaign.flight_dumps;
      Result<obs::FlightRecord> record = obs::LoadFlightRecord(flight_path);
      if (!record.ok()) {
        campaign.Violation(t, "flight-record dump unparseable: " +
                                  record.status().ToString());
      } else if (record->events.empty()) {
        campaign.Violation(t, "flight-record dump has no events");
      }
    }

    if (report.enabled() && final_run.ok) {
      obs::JsonValue run = bench::BenchReport::MakeRun(final_run.rr);
      run["trial"] = t;
      run["family"] = static_cast<uint64_t>(family);
      run["relations_n"] = static_cast<uint64_t>(sizes[which]);
      run["algorithm"] = std::string(SearchAlgorithmName(algo));
      run["trace_events"] = trace.events_recorded();
      run["trace_dropped"] = trace.events_dropped();
      run["stall_preemptions"] = final_run.result.stall_preemptions;
      run["memory_reliefs"] = final_run.result.memory_reliefs;
      run["rung_retries"] = final_run.result.rung_retries;
      run["states_quarantined"] = final_run.result.states_quarantined;
      if (dumped) run["trace_path"] = flight_path;
      report.AddRun(std::move(run));
    }
  }
  SetFaultInjector(nullptr);

  if (list_only) return 0;

  std::printf(
      "fault campaign: %llu trials, %llu kills, %llu resumes, "
      "%llu faults injected, %llu flight dumps, %llu stall preemptions, "
      "%llu rung retries, %llu memory reliefs, %llu states quarantined, "
      "%llu violations\n",
      static_cast<unsigned long long>(trials_run),
      static_cast<unsigned long long>(campaign.kills),
      static_cast<unsigned long long>(campaign.resumes),
      static_cast<unsigned long long>(campaign.faults_injected),
      static_cast<unsigned long long>(campaign.flight_dumps),
      static_cast<unsigned long long>(campaign.stall_preemptions),
      static_cast<unsigned long long>(campaign.rung_retries),
      static_cast<unsigned long long>(campaign.memory_reliefs),
      static_cast<unsigned long long>(campaign.states_quarantined),
      static_cast<unsigned long long>(campaign.violations));

  if (report.enabled()) {
    report.BeginPanel("summary");
    bench::RunResult summary;
    summary.found = false;
    summary.stop_reason = campaign.violations == 0 ? "exhausted" : "cancelled";
    obs::JsonValue run = bench::BenchReport::MakeRun(summary);
    run["trials"] = trials_run;
    run["kills"] = campaign.kills;
    run["resumes"] = campaign.resumes;
    run["faults_injected"] = campaign.faults_injected;
    run["flight_dumps"] = campaign.flight_dumps;
    run["stall_preemptions"] = campaign.stall_preemptions;
    run["memory_reliefs"] = campaign.memory_reliefs;
    run["rung_retries"] = campaign.rung_retries;
    run["states_quarantined"] = campaign.states_quarantined;
    run["violations"] = campaign.violations;
    report.AddRun(std::move(run));
    if (!report.Write()) return 1;
  }
  return campaign.violations == 0 ? 0 : 1;
}
