// trace_report: offline analysis of a discovery trace — either the
// Chrome trace-event JSON written by a --trace= run or the binary "TFR1"
// flight record left behind by the flight recorder (the input kind is
// sniffed from the file's first bytes).
//
// Sections:
//   - top spans by self time: where the wall clock actually went, with
//     child time subtracted (an all-inclusive "search" span would
//     otherwise dwarf everything under it);
//   - per-thread utilization: top-level busy time per track over the
//     trace extent, which makes idle parallel-beam workers visible;
//   - per-rung critical path: for each rung.* span of the degradation
//     ladder, the hottest span names (by self time, any thread) inside
//     its interval;
//   - progress timeline: bucketed event counts with goal / iteration /
//     fault / checkpoint marks, a coarse "was it still making progress"
//     view for flight records.
//
// Usage:
//   trace_report <trace.json | dump.flight> [--top=N] [--buckets=N]

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "obs/json_writer.h"
#include "obs/trace.h"

namespace tupelo {
namespace {

using obs::TraceCategory;
using obs::TraceExportEvent;
using obs::TracePhase;

Result<std::string> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) {
    return Status::Internal("read error on " + path);
  }
  return std::move(buf).str();
}

TraceCategory CategoryFromName(std::string_view name) {
  for (TraceCategory cat :
       {TraceCategory::kSearch, TraceCategory::kExpand,
        TraceCategory::kHeuristic, TraceCategory::kExecutor,
        TraceCategory::kPool, TraceCategory::kDriver, TraceCategory::kVerify,
        TraceCategory::kCheckpoint, TraceCategory::kFault}) {
    if (obs::TraceCategoryName(cat) == name) return cat;
  }
  return TraceCategory::kSearch;
}

// Rebuilds export events from the Chrome trace-event JSON that
// TraceSession::WriteChromeJson emits (ts in microseconds; "M" metadata
// rows skipped). Tolerates foreign Chrome traces as long as the usual
// ph/ts/tid/name fields are present.
Result<std::vector<TraceExportEvent>> FromChromeJson(std::string_view text) {
  Result<obs::JsonValue> doc = obs::JsonValue::Parse(text);
  if (!doc.ok()) return doc.status();
  const obs::JsonValue* events = doc->Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Status::InvalidArgument("no traceEvents array");
  }
  std::vector<TraceExportEvent> out;
  out.reserve(events->elements().size());
  for (const obs::JsonValue& e : events->elements()) {
    const obs::JsonValue* ph = e.Find("ph");
    const obs::JsonValue* ts = e.Find("ts");
    const obs::JsonValue* tid = e.Find("tid");
    const obs::JsonValue* name = e.Find("name");
    if (ph == nullptr || ts == nullptr || tid == nullptr || name == nullptr) {
      continue;
    }
    const std::string& phase = ph->as_string();
    TraceExportEvent ev;
    if (phase == "B") {
      ev.phase = TracePhase::kBegin;
    } else if (phase == "E") {
      ev.phase = TracePhase::kEnd;
    } else if (phase == "i" || phase == "I") {
      ev.phase = TracePhase::kInstant;
    } else {
      continue;  // metadata, counters, complete events from other tools
    }
    ev.ts_ns = static_cast<uint64_t>(ts->as_double() * 1000.0);
    ev.tid = static_cast<uint32_t>(tid->as_int());
    ev.name = name->as_string();
    if (const obs::JsonValue* cat = e.Find("cat"); cat != nullptr) {
      ev.cat = CategoryFromName(cat->as_string());
    }
    if (const obs::JsonValue* args = e.Find("args");
        args != nullptr && args->is_object()) {
      for (const auto& [key, value] : args->members()) {
        if (value.is_number()) ev.args.emplace_back(key, value.as_int());
      }
    }
    out.push_back(std::move(ev));
  }
  return out;
}

struct SpanAgg {
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t self_ns = 0;
};

struct ClosedSpan {
  const std::string* name;
  uint32_t tid = 0;
  uint64_t begin_ns = 0;
  uint64_t dur_ns = 0;
  uint64_t self_ns = 0;
  size_t depth = 0;
};

struct ThreadStats {
  uint64_t events = 0;
  uint64_t spans = 0;
  uint64_t busy_ns = 0;  // sum of top-level span durations
};

struct Analysis {
  std::map<std::string, SpanAgg> by_name;
  std::map<uint32_t, ThreadStats> threads;
  std::vector<ClosedSpan> closed;
  uint64_t first_ns = 0;
  uint64_t last_ns = 0;
  uint64_t instants = 0;
  uint64_t faults = 0;
};

// Walks each thread's event stream with a span stack, computing
// inclusive and exclusive (self) time per span. Orphan E events are
// skipped and still-open B events are closed at the thread's last
// timestamp, mirroring the export-time reconciliation, so the tool also
// accepts truncated or foreign inputs.
Analysis Analyze(const std::vector<TraceExportEvent>& events) {
  Analysis a;
  if (!events.empty()) {
    a.first_ns = UINT64_MAX;
    for (const TraceExportEvent& e : events) {
      a.first_ns = std::min(a.first_ns, e.ts_ns);
      a.last_ns = std::max(a.last_ns, e.ts_ns);
    }
  }
  struct Open {
    const std::string* name;
    uint64_t begin_ns = 0;
    uint64_t child_ns = 0;
  };
  std::map<uint32_t, std::vector<Open>> stacks;
  std::map<uint32_t, uint64_t> last_ts;

  auto close = [&a](std::vector<Open>& stack, uint32_t tid, uint64_t end_ns) {
    Open top = stack.back();
    stack.pop_back();
    uint64_t dur = end_ns >= top.begin_ns ? end_ns - top.begin_ns : 0;
    uint64_t self = dur >= top.child_ns ? dur - top.child_ns : 0;
    if (!stack.empty()) {
      stack.back().child_ns += dur;
    } else {
      a.threads[tid].busy_ns += dur;
    }
    SpanAgg& agg = a.by_name[*top.name];
    ++agg.count;
    agg.total_ns += dur;
    agg.self_ns += self;
    a.closed.push_back(
        {top.name, tid, top.begin_ns, dur, self, stack.size()});
    ++a.threads[tid].spans;
  };

  for (const TraceExportEvent& e : events) {
    ++a.threads[e.tid].events;
    last_ts[e.tid] = std::max(last_ts[e.tid], e.ts_ns);
    std::vector<Open>& stack = stacks[e.tid];
    switch (e.phase) {
      case TracePhase::kBegin:
        stack.push_back({&e.name, e.ts_ns, 0});
        break;
      case TracePhase::kEnd:
        if (!stack.empty() && *stack.back().name == e.name) {
          close(stack, e.tid, e.ts_ns);
        }
        break;
      case TracePhase::kInstant:
        ++a.instants;
        if (e.cat == TraceCategory::kFault) ++a.faults;
        break;
    }
  }
  for (auto& [tid, stack] : stacks) {
    while (!stack.empty()) close(stack, tid, last_ts[tid]);
  }
  return a;
}

double Ms(uint64_t ns) { return static_cast<double>(ns) / 1e6; }

void PrintTopSpans(const Analysis& a, size_t top_n) {
  std::vector<std::pair<std::string, SpanAgg>> rows(a.by_name.begin(),
                                                    a.by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& x, const auto& y) {
    return x.second.self_ns > y.second.self_ns;
  });
  uint64_t self_sum = 0;
  for (const auto& [name, agg] : rows) self_sum += agg.self_ns;

  std::printf("## top spans by self time\n");
  std::printf("%-24s %10s %12s %12s %7s\n", "span", "count", "total_ms",
              "self_ms", "self%");
  for (size_t i = 0; i < rows.size() && i < top_n; ++i) {
    const auto& [name, agg] = rows[i];
    double pct = self_sum == 0 ? 0.0
                               : 100.0 * static_cast<double>(agg.self_ns) /
                                     static_cast<double>(self_sum);
    std::printf("%-24s %10llu %12.3f %12.3f %6.1f%%\n", name.c_str(),
                static_cast<unsigned long long>(agg.count), Ms(agg.total_ns),
                Ms(agg.self_ns), pct);
  }
  std::printf("\n");
}

void PrintThreads(const Analysis& a) {
  uint64_t extent = a.last_ns > a.first_ns ? a.last_ns - a.first_ns : 0;
  std::printf("## per-thread utilization (extent %.3f ms)\n", Ms(extent));
  std::printf("%6s %10s %10s %12s %7s\n", "tid", "events", "spans", "busy_ms",
              "util%");
  for (const auto& [tid, stats] : a.threads) {
    double util = extent == 0 ? 0.0
                              : 100.0 * static_cast<double>(stats.busy_ns) /
                                    static_cast<double>(extent);
    std::printf("%6u %10llu %10llu %12.3f %6.1f%%\n", tid,
                static_cast<unsigned long long>(stats.events),
                static_cast<unsigned long long>(stats.spans),
                Ms(stats.busy_ns), util);
  }
  std::printf("\n");
}

void PrintRungs(const Analysis& a) {
  std::vector<const ClosedSpan*> rungs;
  for (const ClosedSpan& s : a.closed) {
    if (s.name->rfind("rung.", 0) == 0) rungs.push_back(&s);
  }
  std::sort(rungs.begin(), rungs.end(),
            [](const ClosedSpan* x, const ClosedSpan* y) {
              return x->begin_ns < y->begin_ns;
            });
  if (rungs.empty()) return;

  std::printf("## per-rung critical path\n");
  for (const ClosedSpan* rung : rungs) {
    uint64_t rung_end = rung->begin_ns + rung->dur_ns;
    // Hottest work inside the rung's interval, by self time, across every
    // thread (the rung span lives on the driver track but beam work lands
    // on pool workers).
    std::map<std::string, uint64_t> inside;
    for (const ClosedSpan& s : a.closed) {
      if (&s == rung || s.name->rfind("rung.", 0) == 0) continue;
      if (s.begin_ns >= rung->begin_ns && s.begin_ns < rung_end) {
        inside[*s.name] += s.self_ns;
      }
    }
    std::vector<std::pair<std::string, uint64_t>> hot(inside.begin(),
                                                      inside.end());
    std::sort(hot.begin(), hot.end(), [](const auto& x, const auto& y) {
      return x.second > y.second;
    });
    std::printf("%-12s @%9.3f ms  dur %9.3f ms ", rung->name->c_str(),
                Ms(rung->begin_ns - a.first_ns), Ms(rung->dur_ns));
    const char* sep = " | ";
    for (size_t i = 0; i < hot.size() && i < 3; ++i) {
      std::printf("%s%s %.3f ms", sep, hot[i].first.c_str(),
                  Ms(hot[i].second));
      sep = ", ";
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void PrintTimeline(const std::vector<TraceExportEvent>& events,
                   const Analysis& a, size_t buckets) {
  uint64_t extent = a.last_ns > a.first_ns ? a.last_ns - a.first_ns : 0;
  if (extent == 0 || buckets == 0 || events.empty()) return;
  struct Bucket {
    uint64_t count = 0;
    bool goal = false, iteration = false, fault = false, checkpoint = false;
  };
  std::vector<Bucket> cells(buckets);
  for (const TraceExportEvent& e : events) {
    size_t i = static_cast<size_t>(
        static_cast<double>(e.ts_ns - a.first_ns) /
        static_cast<double>(extent) * static_cast<double>(buckets));
    if (i >= buckets) i = buckets - 1;
    Bucket& b = cells[i];
    ++b.count;
    if (e.phase == TracePhase::kInstant) {
      if (e.name == "goal") b.goal = true;
      if (e.name == "iteration") b.iteration = true;
      if (e.cat == TraceCategory::kFault) b.fault = true;
    }
    if (e.cat == TraceCategory::kCheckpoint) b.checkpoint = true;
  }
  uint64_t peak = 0;
  for (const Bucket& b : cells) peak = std::max(peak, b.count);

  std::printf(
      "## progress timeline (%zu buckets; marks: G goal, I iteration, "
      "F fault, C checkpoint)\n",
      buckets);
  for (size_t i = 0; i < buckets; ++i) {
    const Bucket& b = cells[i];
    double at = Ms(a.first_ns) +
                Ms(extent) * static_cast<double>(i) /
                    static_cast<double>(buckets);
    int bar = peak == 0 ? 0
                        : static_cast<int>(40.0 * static_cast<double>(b.count) /
                                           static_cast<double>(peak));
    std::printf("%9.3f ms %8llu |%-40.*s| %s%s%s%s\n", at,
                static_cast<unsigned long long>(b.count), bar,
                "########################################",
                b.goal ? "G" : "", b.iteration ? "I" : "", b.fault ? "F" : "",
                b.checkpoint ? "C" : "");
  }
  std::printf("\n");
}

int Usage() {
  std::fprintf(stderr,
               "usage: trace_report <trace.json | dump.flight> [--top=N] "
               "[--buckets=N]\n");
  return 2;
}

}  // namespace
}  // namespace tupelo

int main(int argc, char** argv) {
  using namespace tupelo;

  std::string path;
  size_t top_n = 20;
  size_t buckets = 32;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--top=", 0) == 0) {
      top_n = std::strtoull(argv[i] + std::strlen("--top="), nullptr, 10);
    } else if (arg.rfind("--buckets=", 0) == 0) {
      buckets =
          std::strtoull(argv[i] + std::strlen("--buckets="), nullptr, 10);
    } else if (arg.rfind("--", 0) == 0 || !path.empty()) {
      return Usage();
    } else {
      path = std::string(arg);
    }
  }
  if (path.empty()) return Usage();

  Result<std::string> bytes = ReadFileBytes(path);
  if (!bytes.ok()) {
    std::fprintf(stderr, "trace_report: %s\n",
                 bytes.status().ToString().c_str());
    return 1;
  }

  std::vector<obs::TraceExportEvent> events;
  const char* kind = "chrome-json";
  if (bytes->size() >= 4 && bytes->compare(0, 4, "TFR1") == 0) {
    kind = "flight-record";
    Result<obs::FlightRecord> record = obs::ParseFlightRecord(*bytes);
    if (!record.ok()) {
      std::fprintf(stderr, "trace_report: %s\n",
                   record.status().ToString().c_str());
      return 1;
    }
    events = std::move(record->events);
  } else {
    Result<std::vector<obs::TraceExportEvent>> parsed =
        FromChromeJson(*bytes);
    if (!parsed.ok()) {
      std::fprintf(stderr, "trace_report: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    events = *std::move(parsed);
  }
  // Stable: equal-timestamp B/E pairs within a thread must keep their
  // emission order or the stack walk would orphan them.
  std::stable_sort(
      events.begin(), events.end(),
      [](const obs::TraceExportEvent& x, const obs::TraceExportEvent& y) {
        return x.ts_ns < y.ts_ns;
      });

  Analysis a = Analyze(events);
  std::printf("# trace_report: %s, %zu events, %zu threads, %.3f ms, "
              "%llu instants, %llu faults\n\n",
              kind, events.size(), a.threads.size(),
              Ms(a.last_ns - a.first_ns),
              static_cast<unsigned long long>(a.instants),
              static_cast<unsigned long long>(a.faults));
  PrintTopSpans(a, top_n);
  PrintThreads(a);
  PrintRungs(a);
  PrintTimeline(events, a, buckets);
  return 0;
}
