// serve_loadgen — concurrent-client load generator for tupelo_serve.
//
// Usage:
//   serve_loadgen [--server=HOST:PORT] [--serve-bin=PATH]
//                 [--clients=N] [--jobs=M] [--arrival-per-sec=R]
//                 [--deadline-ms=D] [--disconnect-pct=P] [--slow-pct=P]
//                 [--hard-pct=P]
//                 [--kill-after-ms=T] [--restarts=K]
//                 [--workers=N] [--queue-limit=N] [--pool-threads=N]
//                 [--checkpoint-keep=N] [--journal-dir=DIR]
//                 [--seed=S] [--quick] [--json=BENCH_serve.json]
//
// Without --server it spawns its own tupelo_serve (sibling binary, or
// --serve-bin=) on an ephemeral port and tears it down at the end — and
// with --kill-after-ms it SIGKILLs the daemon mid-run every T ms,
// restarts it on the same journal directory (--restarts times), and keeps
// the clients submitting/streaming across the crashes. That is the
// crash-durability proof: every accepted job must still reach a terminal
// state after the restarts, or the run exits non-zero with a violation.
//
// Fault modes: --disconnect-pct makes that share of jobs submit with
// cancel_on_disconnect and drop the connection right after the accept
// (exercising disconnect-driven cancellation); --slow-pct makes that
// share of clients sleep between stream polls (a slow consumer must
// never stall the server or other tenants).
//
// The --json report is schema_version 10, harness "serve": a "jobs"
// panel with one run per submitted job (accepted or shed) and a
// "summary" panel with throughput, p50/p99 latency of accepted jobs,
// shed rate, jobs/sec, resume counts and the violation count.
// scripts/check_bench_json.py validates it.

#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "relational/io.h"
#include "serve/client.h"
#include "workloads/synthetic.h"

namespace {

using namespace tupelo;
using Clock = std::chrono::steady_clock;

double MillisSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

// Counter-keyed deterministic rng (same idiom as tools/fault_campaign.cc):
// trial decisions depend only on (seed, counter), never on interleaving.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// One spawned tupelo_serve process. The stdout pipe stays open so the
// "listening <port>" banner can be scraped; the daemon writes nothing
// else until shutdown.
struct ServerProcess {
  pid_t pid = -1;
  int stdout_fd = -1;
  uint16_t port = 0;
};

Result<ServerProcess> SpawnServer(const std::string& bin,
                                  const std::vector<std::string>& args) {
  int pipe_fds[2];
  if (::pipe(pipe_fds) != 0) {
    return Status::Internal("pipe() failed");
  }
  pid_t pid = ::fork();
  if (pid < 0) {
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return Status::Internal("fork() failed");
  }
  if (pid == 0) {
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(bin.c_str()));
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(bin.c_str(), argv.data());
    std::perror("execv tupelo_serve");
    ::_exit(127);
  }
  ::close(pipe_fds[1]);
  // Scrape "listening <port>\n".
  std::string banner;
  char c;
  while (banner.find('\n') == std::string::npos) {
    ssize_t n = ::read(pipe_fds[0], &c, 1);
    if (n <= 0) {
      ::close(pipe_fds[0]);
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      return Status::Internal("server exited before printing its port");
    }
    banner.push_back(c);
  }
  unsigned port = 0;
  if (std::sscanf(banner.c_str(), "listening %u", &port) != 1 || port == 0) {
    ::close(pipe_fds[0]);
    ::kill(pid, SIGKILL);
    ::waitpid(pid, nullptr, 0);
    return Status::Internal("unparseable server banner: " + banner);
  }
  ServerProcess p;
  p.pid = pid;
  p.stdout_fd = pipe_fds[0];
  p.port = static_cast<uint16_t>(port);
  return p;
}

// Where the clients currently find the server. The kill/restart
// supervisor bumps `generation` on every respawn; clients re-resolve on
// any connection failure.
struct Endpoint {
  std::mutex mu;
  uint16_t port = 0;
  uint64_t generation = 0;
};

struct JobOutcome {
  int index = 0;
  bool accepted = false;
  bool shed_final = false;       // still shed after retrying the hint
  int sheds = 0;                 // shed responses seen before acceptance
  int64_t retry_after_millis = 0;  // last hint received
  size_t queue_depth = 0;        // depth reported at the final submit
  bool disconnect_mode = false;
  int64_t deadline_millis = 0;
  serve::JobStatus final_status;  // valid when accepted && terminal
  bool terminal = false;
  double client_latency_millis = 0.0;  // submit → terminal, client clock
  bool violation = false;  // accepted but never reached terminal
};

struct LoadgenConfig {
  std::string host = "127.0.0.1";
  size_t clients = 4;
  size_t jobs = 24;
  double arrival_per_sec = 0.0;  // 0 = no pacing
  int64_t deadline_ms = 1500;
  int disconnect_pct = 0;
  int slow_pct = 0;
  // Share of jobs made unsatisfiable (target values perturbed so no
  // mapping exists): those searches run their whole deadline, which is
  // what makes kill -9 land mid-job and gives recovery real work.
  int hard_pct = 0;
  int64_t await_ms = 30000;  // per-job terminal wait ceiling
  uint64_t seed = 2006;
};

Result<serve::Client> ConnectCurrent(const LoadgenConfig& config,
                                     Endpoint& endpoint) {
  uint16_t port;
  {
    std::lock_guard<std::mutex> lock(endpoint.mu);
    port = endpoint.port;
  }
  return serve::Client::Connect(config.host, port);
}

// Connects, retrying through server downtime (kill/restart windows),
// until `deadline` lapses.
Result<serve::Client> ConnectPatient(const LoadgenConfig& config,
                                     Endpoint& endpoint,
                                     Clock::time_point deadline) {
  for (;;) {
    Result<serve::Client> client = ConnectCurrent(config, endpoint);
    if (client.ok()) return client;
    if (Clock::now() >= deadline) return client;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

void RunClient(const LoadgenConfig& config, Endpoint& endpoint,
               size_t client_index, Clock::time_point start,
               std::vector<JobOutcome>& outcomes,
               std::atomic<size_t>& max_queue_depth) {
  const bool slow =
      config.slow_pct > 0 &&
      Mix64(config.seed ^ (0x510c << 16) ^ client_index) % 100 <
          static_cast<uint64_t>(config.slow_pct);
  for (size_t i = client_index; i < config.jobs; i += config.clients) {
    JobOutcome& out = outcomes[i];
    out.index = static_cast<int>(i);
    out.deadline_millis = config.deadline_ms;
    out.disconnect_mode =
        config.disconnect_pct > 0 &&
        Mix64(config.seed ^ (0xd15c << 16) ^ i) % 100 <
            static_cast<uint64_t>(config.disconnect_pct);

    // Open-loop arrival pacing: job i targets start + i/rate, regardless
    // of how the previous jobs fared — overload stays overload.
    if (config.arrival_per_sec > 0.0) {
      double target_ms =
          static_cast<double>(i) * 1000.0 / config.arrival_per_sec;
      double now_ms = MillisSince(start);
      if (now_ms < target_ms) {
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(
            target_ms - now_ms));
      }
    }

    // The workload: a synthetic matching pair whose size is derived from
    // (seed, i) — deterministic across runs and across a server restart.
    size_t n = 2 + Mix64(config.seed ^ i) % 3;
    SyntheticMatchingPair pair = MakeSyntheticMatchingPair(n);
    serve::JobSpec spec;
    spec.tenant = "client-" + std::to_string(client_index);
    spec.source_tdb = WriteTdb(pair.source);
    spec.target_tdb = WriteTdb(pair.target);
    const bool hard =
        config.hard_pct > 0 &&
        Mix64(config.seed ^ (0xdeadu << 16) ^ i) % 100 <
            static_cast<uint64_t>(config.hard_pct);
    if (hard) {
      // Perturb the target values (a1 → z1, ...) so no mapping exists:
      // the search burns its entire deadline and checkpoints as it goes.
      std::string perturbed;
      perturbed.reserve(spec.target_tdb.size());
      for (size_t k = 0; k < spec.target_tdb.size(); ++k) {
        char c = spec.target_tdb[k];
        perturbed.push_back(c == 'a' && k + 1 < spec.target_tdb.size() &&
                                    std::isdigit(static_cast<unsigned char>(
                                        spec.target_tdb[k + 1]))
                                ? 'z'
                                : c);
      }
      spec.target_tdb = std::move(perturbed);
    }
    spec.deadline_millis = config.deadline_ms;
    spec.cancel_on_disconnect = out.disconnect_mode;

    const Clock::time_point submit_start = Clock::now();
    const Clock::time_point patience =
        submit_start + std::chrono::milliseconds(config.await_ms);

    // Submit, riding out sheds (sleep the hint, retry) and crashes
    // (reconnect to the restarted server).
    std::string job_id;
    for (;;) {
      Result<serve::Client> client =
          ConnectPatient(config, endpoint, patience);
      if (!client.ok()) break;
      Result<serve::SubmitReply> reply = client->Submit(spec);
      if (!reply.ok()) {
        // Mid-crash: the connection died or the server refused; retry
        // against the restarted process.
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        if (Clock::now() >= patience) break;
        continue;
      }
      size_t depth = reply->queue_depth;
      size_t seen = max_queue_depth.load(std::memory_order_relaxed);
      while (depth > seen && !max_queue_depth.compare_exchange_weak(
                                 seen, depth, std::memory_order_relaxed)) {
      }
      if (reply->accepted) {
        out.accepted = true;
        out.queue_depth = depth;
        job_id = reply->job_id;
        if (out.disconnect_mode) {
          // Fault mode: vanish right after the accept. The server must
          // cancel the job (or let it finish — the race is benign).
          client->Close();
        }
        break;
      }
      ++out.sheds;
      out.retry_after_millis = reply->retry_after_millis;
      out.queue_depth = depth;
      if (out.sheds >= 3 || Clock::now() >= patience) {
        out.shed_final = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min<int64_t>(reply->retry_after_millis, 500)));
    }
    if (!out.accepted || out.disconnect_mode) continue;

    // Stream updates until terminal, surviving restarts: the job id stays
    // valid across a crash because the journal recovery reloads it.
    uint64_t version = 0;
    while (Clock::now() < patience) {
      Result<serve::Client> client =
          ConnectPatient(config, endpoint, patience);
      if (!client.ok()) break;
      bool reconnect = false;
      while (Clock::now() < patience) {
        if (slow) {
          std::this_thread::sleep_for(std::chrono::milliseconds(30));
        }
        Result<serve::JobStatus> status =
            client->Stream(job_id, version, 250);
        if (!status.ok()) {
          reconnect = true;
          break;
        }
        version = status->version;
        if (status->state == serve::JobState::kDone) {
          out.final_status = *status;
          out.terminal = true;
          out.client_latency_millis = MillisSince(submit_start);
          break;
        }
      }
      if (out.terminal || !reconnect) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    // An accepted job that never reached a terminal state within the
    // (generous) patience window is the one unforgivable outcome:
    // accepted-then-dropped.
    out.violation = !out.terminal;
  }
}

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(values.size() - 1));
  return values[idx];
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchArgs bench_args = bench::ParseBenchArgs(argc, argv, 250000);

  LoadgenConfig config;
  config.seed = bench_args.seed;
  std::string server_flag;
  std::string serve_bin;
  std::string journal_dir = "serve_loadgen_journal";
  int64_t kill_after_ms = 0;
  int restarts = 1;
  std::vector<std::string> forward;  // flags forwarded to a spawned server
  forward.push_back("--port=0");
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    auto u64 = [&](const char* name) {
      return std::strtoull(argv[i] + std::strlen(name), nullptr, 10);
    };
    if (arg.rfind("--server=", 0) == 0) {
      server_flag = arg.substr(std::strlen("--server="));
    } else if (arg.rfind("--serve-bin=", 0) == 0) {
      serve_bin = arg.substr(std::strlen("--serve-bin="));
    } else if (arg.rfind("--journal-dir=", 0) == 0) {
      journal_dir = arg.substr(std::strlen("--journal-dir="));
    } else if (arg.rfind("--clients=", 0) == 0) {
      config.clients = static_cast<size_t>(u64("--clients="));
    } else if (arg.rfind("--jobs=", 0) == 0) {
      config.jobs = static_cast<size_t>(u64("--jobs="));
    } else if (arg.rfind("--arrival-per-sec=", 0) == 0) {
      config.arrival_per_sec =
          std::strtod(argv[i] + std::strlen("--arrival-per-sec="), nullptr);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      config.deadline_ms = static_cast<int64_t>(u64("--deadline-ms="));
    } else if (arg.rfind("--disconnect-pct=", 0) == 0) {
      config.disconnect_pct = static_cast<int>(u64("--disconnect-pct="));
    } else if (arg.rfind("--slow-pct=", 0) == 0) {
      config.slow_pct = static_cast<int>(u64("--slow-pct="));
    } else if (arg.rfind("--hard-pct=", 0) == 0) {
      config.hard_pct = static_cast<int>(u64("--hard-pct="));
    } else if (arg.rfind("--await-ms=", 0) == 0) {
      config.await_ms = static_cast<int64_t>(u64("--await-ms="));
    } else if (arg.rfind("--kill-after-ms=", 0) == 0) {
      kill_after_ms = static_cast<int64_t>(u64("--kill-after-ms="));
    } else if (arg.rfind("--restarts=", 0) == 0) {
      restarts = static_cast<int>(u64("--restarts="));
    } else if (arg.rfind("--workers=", 0) == 0 ||
               arg.rfind("--queue-limit=", 0) == 0 ||
               arg.rfind("--pool-threads=", 0) == 0 ||
               arg.rfind("--checkpoint-keep=", 0) == 0 ||
               arg.rfind("--fair-states=", 0) == 0 ||
               arg.rfind("--max-deadline-ms=", 0) == 0 ||
               arg.rfind("--checkpoint-interval=", 0) == 0) {
      forward.push_back(std::string(arg));
    }
  }
  if (bench_args.quick) {
    config.jobs = std::min<size_t>(config.jobs, 12);
    config.await_ms = std::min<int64_t>(config.await_ms, 20000);
  }
  if (config.clients == 0) config.clients = 1;

  const bool spawn = server_flag.empty();
  Endpoint endpoint;
  ServerProcess proc;
  std::atomic<int> kills{0};
  if (spawn) {
    if (serve_bin.empty()) {
      std::string self = argv[0];
      size_t slash = self.find_last_of('/');
      serve_bin = (slash == std::string::npos ? std::string(".")
                                              : self.substr(0, slash)) +
                  "/tupelo_serve";
    }
    forward.push_back("--journal-dir=" + journal_dir);
    Result<ServerProcess> spawned = SpawnServer(serve_bin, forward);
    if (!spawned.ok()) {
      std::fprintf(stderr, "serve_loadgen: %s\n",
                   spawned.status().ToString().c_str());
      return 1;
    }
    proc = *spawned;
    endpoint.port = proc.port;
  } else {
    size_t colon = server_flag.find(':');
    if (colon == std::string::npos) {
      std::fprintf(stderr, "serve_loadgen: --server wants HOST:PORT\n");
      return 2;
    }
    config.host = server_flag.substr(0, colon);
    endpoint.port = static_cast<uint16_t>(
        std::strtoul(server_flag.c_str() + colon + 1, nullptr, 10));
  }

  std::printf("serve_loadgen: %zu clients, %zu jobs, deadline %lldms, "
              "arrival %.1f/s, server %s:%u%s\n",
              config.clients, config.jobs,
              static_cast<long long>(config.deadline_ms),
              config.arrival_per_sec, config.host.c_str(),
              static_cast<unsigned>(endpoint.port),
              kill_after_ms > 0 ? " [kill/restart mode]" : "");

  std::vector<JobOutcome> outcomes(config.jobs);
  std::atomic<size_t> max_queue_depth{0};
  const Clock::time_point start = Clock::now();

  // The chaos supervisor: SIGKILL the daemon mid-run, restart it on the
  // same journal, repeat. Runs alongside the clients.
  std::atomic<bool> clients_done{false};
  std::thread killer;
  if (spawn && kill_after_ms > 0 && restarts > 0) {
    killer = std::thread([&] {
      for (int k = 0; k < restarts; ++k) {
        auto until = Clock::now() + std::chrono::milliseconds(kill_after_ms);
        while (Clock::now() < until) {
          if (clients_done.load(std::memory_order_relaxed)) return;
          std::this_thread::sleep_for(std::chrono::milliseconds(10));
        }
        ::kill(proc.pid, SIGKILL);
        ::waitpid(proc.pid, nullptr, 0);
        ::close(proc.stdout_fd);
        kills.fetch_add(1, std::memory_order_relaxed);
        Result<ServerProcess> respawn = SpawnServer(serve_bin, forward);
        if (!respawn.ok()) {
          std::fprintf(stderr, "serve_loadgen: respawn failed: %s\n",
                       respawn.status().ToString().c_str());
          return;
        }
        proc = *respawn;
        {
          std::lock_guard<std::mutex> lock(endpoint.mu);
          endpoint.port = proc.port;
          ++endpoint.generation;
        }
        std::printf("serve_loadgen: kill #%d, restarted on port %u\n", k + 1,
                    static_cast<unsigned>(proc.port));
      }
    });
  }

  {
    std::vector<std::thread> clients;
    clients.reserve(config.clients);
    for (size_t c = 0; c < config.clients; ++c) {
      clients.emplace_back([&, c] {
        RunClient(config, endpoint, c, start, outcomes, max_queue_depth);
      });
    }
    for (std::thread& t : clients) t.join();
  }
  clients_done.store(true, std::memory_order_relaxed);
  if (killer.joinable()) killer.join();
  const double wall_millis = MillisSince(start);

  // Final server-side metrics (and recovery counts) before teardown.
  obs::JsonValue server_metrics;
  uint64_t jobs_recovered = 0;
  {
    Result<serve::Client> client = ConnectPatient(
        config, endpoint, Clock::now() + std::chrono::seconds(5));
    if (client.ok()) {
      Result<obs::JsonValue> m = client->Metrics();
      if (m.ok()) {
        const obs::JsonValue* recovered = m->Find("jobs_recovered");
        if (recovered != nullptr && recovered->is_number()) {
          jobs_recovered = recovered->as_uint();
        }
        const obs::JsonValue* registry = m->Find("metrics");
        if (registry != nullptr) server_metrics = *registry;
      }
      if (spawn) client->RequestShutdown();
    }
  }
  if (spawn) {
    // Clean drain; escalate only if the daemon ignores the request.
    int status = 0;
    for (int i = 0; i < 200 && ::waitpid(proc.pid, &status, WNOHANG) == 0;
         ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
    }
    ::kill(proc.pid, SIGKILL);
    ::waitpid(proc.pid, nullptr, WNOHANG);
    ::close(proc.stdout_fd);
  }

  // ── Aggregate ──────────────────────────────────────────────────────
  size_t accepted = 0, shed = 0, completed = 0, resumed = 0, violations = 0;
  size_t disconnects = 0, cancelled = 0, deadline_ok = 0, sheds_seen = 0;
  std::vector<double> latencies;
  for (const JobOutcome& out : outcomes) {
    sheds_seen += out.sheds;
    if (out.shed_final) ++shed;
    if (!out.accepted) continue;
    ++accepted;
    if (out.disconnect_mode) {
      ++disconnects;
      continue;  // fire-and-forget: no terminal expectation client-side
    }
    if (out.violation) {
      ++violations;
      continue;
    }
    ++completed;
    if (out.final_status.resumed) ++resumed;
    if (out.final_status.stop_reason == "cancelled") ++cancelled;
    latencies.push_back(out.final_status.total_millis);
    if (out.final_status.total_millis <=
        static_cast<double>(out.deadline_millis) * 1.25 + 50.0) {
      ++deadline_ok;
    }
  }
  const double p50 = Percentile(latencies, 0.50);
  const double p99 = Percentile(latencies, 0.99);
  const double jobs_per_sec =
      wall_millis > 0.0 ? static_cast<double>(completed) * 1000.0 / wall_millis
                        : 0.0;

  std::printf("serve_loadgen: accepted=%zu shed=%zu completed=%zu "
              "resumed=%zu kills=%d recovered=%llu p50=%.1fms p99=%.1fms "
              "max_queue=%zu violations=%zu\n",
              accepted, shed, completed, resumed,
              kills.load(), static_cast<unsigned long long>(jobs_recovered),
              p50, p99, max_queue_depth.load(), violations);

  // ── Report (schema 10, harness "serve") ────────────────────────────
  bench::BenchReport report("serve", bench_args);
  report.BeginPanel("jobs");
  for (const JobOutcome& out : outcomes) {
    bench::RunResult r;
    r.deadline_millis = out.deadline_millis;
    if (out.terminal) {
      const serve::JobStatus& s = out.final_status;
      r.found = s.found;
      r.stop_reason = s.stop_reason;
      r.cutoff = !s.found && s.stop_reason != "exhausted";
      r.verified = s.verified;
      r.states = s.states_examined;
      r.millis = s.total_millis;
      r.resumed = s.resumed;
    } else {
      r.stop_reason = "cancelled";  // shed, disconnected, or dropped
      r.cutoff = true;
    }
    obs::JsonValue run = bench::BenchReport::MakeRun(r);
    run["job_id"] = out.accepted && out.terminal ? out.final_status.id
                    : out.accepted              ? std::string("(untracked)")
                                                : std::string("(shed)");
    run["accepted"] = out.accepted;
    run["shed"] = out.shed_final;
    run["sheds_seen"] = static_cast<int64_t>(out.sheds);
    run["retry_after_millis"] = out.retry_after_millis;
    run["queue_depth"] = static_cast<uint64_t>(out.queue_depth);
    run["disconnect_mode"] = out.disconnect_mode;
    run["queue_millis"] =
        out.terminal ? out.final_status.queue_millis : 0.0;
    run["latency_millis"] = out.client_latency_millis;
    run["retries"] =
        static_cast<int64_t>(out.terminal ? out.final_status.retries : 0);
    run["violation"] = out.violation;
    report.AddRun(std::move(run));
  }
  report.BeginPanel("summary");
  {
    bench::RunResult r;
    r.millis = wall_millis;
    obs::JsonValue run = bench::BenchReport::MakeRun(r);
    run["jobs_submitted"] = static_cast<uint64_t>(config.jobs);
    run["jobs_accepted"] = static_cast<uint64_t>(accepted);
    run["jobs_shed"] = static_cast<uint64_t>(shed);
    // Total shed replies observed, including ones a later retry turned
    // into an acceptance — the typed-shed evidence even when every job
    // eventually got in.
    run["sheds_seen"] = static_cast<uint64_t>(sheds_seen);
    run["jobs_completed"] = static_cast<uint64_t>(completed);
    run["jobs_resumed"] = static_cast<uint64_t>(resumed);
    run["jobs_recovered"] = jobs_recovered;
    run["jobs_disconnected"] = static_cast<uint64_t>(disconnects);
    run["jobs_cancelled"] = static_cast<uint64_t>(cancelled);
    run["jobs_per_sec"] = jobs_per_sec;
    run["p50_millis"] = p50;
    run["p99_millis"] = p99;
    run["shed_rate"] = config.jobs > 0 ? static_cast<double>(shed) /
                                             static_cast<double>(config.jobs)
                                       : 0.0;
    run["deadline_ok"] = static_cast<uint64_t>(deadline_ok);
    run["max_queue_depth"] =
        static_cast<uint64_t>(max_queue_depth.load());
    run["arrival_per_sec"] = config.arrival_per_sec;
    run["clients"] = static_cast<uint64_t>(config.clients);
    run["deadline_ms"] = config.deadline_ms;
    run["kills"] = static_cast<int64_t>(kills.load());
    run["violations"] = static_cast<uint64_t>(violations);
    if (server_metrics.is_object()) run["metrics"] = server_metrics;
    report.AddRun(std::move(run));
  }
  if (!report.Write()) return 1;

  return violations == 0 ? 0 : 1;
}
