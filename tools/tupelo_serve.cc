// tupelo_serve — the discovery-as-a-service daemon.
//
// Usage:
//   tupelo_serve --journal-dir=DIR [--port=N] [--workers=N]
//                [--queue-limit=N] [--pool-threads=N] [--fair-states=N]
//                [--default-deadline-ms=N] [--max-deadline-ms=N]
//                [--checkpoint-interval=N] [--checkpoint-keep=N]
//                [--retries=N] [--trace=trace.json]
//
// Binds 127.0.0.1:<port> (0 = ephemeral) and prints "listening <port>" on
// stdout once ready — scripts scrape that line. Speaks the framed-JSON
// protocol documented in docs/SERVING.md. On boot it recovers the journal
// directory: stale `*.tmp` files are swept, finished jobs become servable
// terminal records, and unfinished jobs re-enter the queue with resume —
// so kill -9 mid-campaign loses no accepted work.
//
// SIGINT/SIGTERM trigger graceful shutdown: stop accepting, cancel the
// root CancelToken (running searches stop at their next budget poll,
// their last checkpoint already durable), join all threads, flush the
// trace, exit 0. A job preempted this way resumes on the next boot.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void HandleSignal(int) { g_stop = 1; }

uint64_t FlagU64(const char* arg, const char* name, uint64_t fallback) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) == 0) {
    return std::strtoull(arg + len, nullptr, 10);
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tupelo;

  serve::ServerConfig config;
  config.jobs.journal_dir = "serve_journal";
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--journal-dir=", 14) == 0) {
      config.jobs.journal_dir = arg + 14;
    } else if (std::strncmp(arg, "--trace=", 8) == 0) {
      trace_path = arg + 8;
    } else if (std::strcmp(arg, "--help") == 0) {
      std::fprintf(stderr,
                   "usage: tupelo_serve --journal-dir=DIR [--port=N] "
                   "[--workers=N] [--queue-limit=N] [--pool-threads=N] "
                   "[--fair-states=N] [--default-deadline-ms=N] "
                   "[--max-deadline-ms=N] [--checkpoint-interval=N] "
                   "[--checkpoint-keep=N] [--retries=N] [--trace=PATH]\n");
      return 2;
    } else {
      config.port = static_cast<uint16_t>(
          FlagU64(arg, "--port=", config.port));
      config.jobs.workers =
          static_cast<size_t>(FlagU64(arg, "--workers=", config.jobs.workers));
      config.jobs.queue_limit = static_cast<size_t>(
          FlagU64(arg, "--queue-limit=", config.jobs.queue_limit));
      config.jobs.pool_threads = static_cast<size_t>(
          FlagU64(arg, "--pool-threads=", config.jobs.pool_threads));
      config.jobs.fair_states_per_job =
          FlagU64(arg, "--fair-states=", config.jobs.fair_states_per_job);
      config.jobs.default_deadline_millis = static_cast<int64_t>(FlagU64(
          arg, "--default-deadline-ms=",
          static_cast<uint64_t>(config.jobs.default_deadline_millis)));
      config.jobs.max_deadline_millis = static_cast<int64_t>(
          FlagU64(arg, "--max-deadline-ms=",
                  static_cast<uint64_t>(config.jobs.max_deadline_millis)));
      config.jobs.checkpoint_interval_states = FlagU64(
          arg, "--checkpoint-interval=", config.jobs.checkpoint_interval_states);
      config.jobs.checkpoint_keep = static_cast<size_t>(
          FlagU64(arg, "--checkpoint-keep=", config.jobs.checkpoint_keep));
      config.jobs.max_job_retries = static_cast<int>(FlagU64(
          arg, "--retries=", static_cast<uint64_t>(config.jobs.max_job_retries)));
    }
  }

  obs::MetricRegistry metrics;
  config.jobs.metrics = &metrics;
  std::unique_ptr<obs::TraceSession> trace;
  if (!trace_path.empty()) {
    trace = std::make_unique<obs::TraceSession>();
    config.jobs.trace = trace.get();
  }

  serve::Server server(std::move(config));
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "tupelo_serve: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("listening %u\n", static_cast<unsigned>(server.port()));
  std::fflush(stdout);

  std::signal(SIGINT, HandleSignal);
  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGPIPE, SIG_IGN);

  while (g_stop == 0 && !server.stop_requested()) {
    struct timespec ts = {0, 20 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  server.Shutdown();

  if (trace != nullptr && !trace->WriteChromeJson(trace_path)) {
    std::fprintf(stderr, "tupelo_serve: cannot write trace to %s\n",
                 trace_path.c_str());
  }
  std::printf("shutdown clean (recovered=%llu)\n",
              static_cast<unsigned long long>(server.jobs().jobs_recovered()));
  return 0;
}
