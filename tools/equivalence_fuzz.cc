// equivalence_fuzz: the scalable arm of the executor differential
// harness (tests/differential_common.h). Generates seeded random
// expressions against every workload generator plus randomized edge
// instances (empty relations, arity-0 relations, ⊥-heavy columns,
// collision-prone schemas) and checks that the interpreter, the
// CompiledExecutor, and the optimizer legs agree exactly — same
// database (values, attribute order, tuple order) on success, same
// Status code and message on failure — and that the fault injector is
// consulted identically on both executors.
//
// Exit status is nonzero on any divergence, with a replayable
// description (seed, expression script, both outcomes) on stderr.
//
//   equivalence_fuzz [--exprs=N] [--seed=S] [--max-len=K] [--quick]
//
// The default run (1000+ expressions) is the acceptance gate for the
// compiled executor; --quick trims the count for the smoke lane.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "differential_common.h"
#include "fira/builtin_functions.h"
#include "relational/io.h"
#include "workloads/bamm.h"
#include "workloads/flights.h"
#include "workloads/restructuring.h"
#include "workloads/semantic.h"
#include "workloads/synthetic.h"

namespace tupelo {
namespace {

Database Tdb(const char* text) {
  Result<Database> db = ParseTdb(text);
  if (!db.ok()) {
    std::fprintf(stderr, "fixture parse error: %s\n",
                 db.status().message().c_str());
    std::exit(2);
  }
  return std::move(db).value();
}

// A small zoo of edge instances the random generator would be unlikely
// to hit: empty relations, arity-0 relations, ⊥-heavy pointer columns,
// schemas primed for rename collisions.
std::vector<std::pair<std::string, Database>> EdgeInstances() {
  std::vector<std::pair<std::string, Database>> out;
  out.emplace_back("empty_relation", Tdb("relation R (A, B) { }"));
  out.emplace_back("single_column", Tdb("relation R (A) { (1) (2) }"));
  out.emplace_back(
      "null_heavy",
      Tdb("relation R (P, A, B) { (null, null, 1) (A, null, null) "
          "(B, 2, null) (Z, 3, 4) }"));
  out.emplace_back(
      "collision_prone",
      Tdb("relation R (A, B, gen0, gen1) { (1, 2, 3, 4) } "
          "relation gen2 (C) { (5) }"));
  {
    Database db = Tdb("relation S (A) { (1) (2) (3) }");
    Result<Relation> zero = Relation::Create("Z", {});
    if (zero.ok()) {
      (void)zero->AddTuple(Tuple());
      (void)zero->AddTuple(Tuple());
      db.PutRelation(std::move(zero).value());
    }
    out.emplace_back("arity_zero", std::move(db));
  }
  return out;
}

std::vector<std::pair<std::string, Database>> Instances(bool quick) {
  std::vector<std::pair<std::string, Database>> out = EdgeInstances();
  out.emplace_back("flights_a", MakeFlightsA());
  out.emplace_back("flights_b", MakeFlightsB());
  out.emplace_back("flights_c", MakeFlightsC());
  {
    SyntheticMatchingPair pair = MakeSyntheticMatchingPair(quick ? 6 : 16);
    out.emplace_back("synthetic_source", std::move(pair.source));
    out.emplace_back("synthetic_target", std::move(pair.target));
  }
  {
    RestructuringWorkload w =
        MakeRestructuringWorkload(quick ? 2 : 4, quick ? 3 : 6);
    out.emplace_back("restructuring_wide", std::move(w.wide));
    out.emplace_back("restructuring_flat", std::move(w.flat));
    out.emplace_back("restructuring_split", std::move(w.split));
  }
  for (BammDomain domain : {BammDomain::kBooks, BammDomain::kAutos,
                            BammDomain::kMusic, BammDomain::kMovies}) {
    BammWorkload w = MakeBammWorkload(domain, /*seed=*/11);
    out.emplace_back("bamm_source", std::move(w.source));
    if (!w.targets.empty()) {
      out.emplace_back("bamm_target", std::move(w.targets[0]));
    }
  }
  for (SemanticDomain domain :
       {SemanticDomain::kInventory, SemanticDomain::kRealEstate}) {
    SemanticWorkload w = MakeSemanticWorkload(domain, quick ? 4 : 8);
    out.emplace_back("semantic_source", std::move(w.source));
    out.emplace_back("semantic_target", std::move(w.target));
  }
  return out;
}

int Run(uint64_t exprs, uint64_t seed, size_t max_len, bool quick) {
  FunctionRegistry registry;
  if (Status st = RegisterBuiltinFunctions(&registry); !st.ok()) {
    std::fprintf(stderr, "builtin registration failed: %s\n",
                 st.message().c_str());
    return 2;
  }

  std::vector<std::pair<std::string, Database>> instances =
      Instances(quick);
  diff::Rng rng(seed);
  uint64_t divergences = 0;
  uint64_t checked = 0;
  uint64_t failures_exercised = 0;

  for (uint64_t i = 0; i < exprs; ++i) {
    const auto& [name, db] = instances[i % instances.size()];
    MappingExpression expr =
        diff::RandomExpression(rng, db, registry, max_len);
    ++checked;
    if (!expr.Apply(db, &registry).ok()) ++failures_exercised;

    std::string divergence = diff::CheckExpression(expr, db, &registry);
    if (divergence.empty()) {
      divergence = diff::CheckInjectorParity(expr, db, &registry);
    }
    if (!divergence.empty()) {
      ++divergences;
      std::fprintf(stderr,
                   "DIVERGENCE (instance=%s, seed=%llu, expr #%llu)\n%s\n",
                   name.c_str(), static_cast<unsigned long long>(seed),
                   static_cast<unsigned long long>(i), divergence.c_str());
    }
  }

  std::printf(
      "equivalence_fuzz: %llu expressions over %zu instances, "
      "%llu error-path cases, %llu divergences (seed=%llu)\n",
      static_cast<unsigned long long>(checked), instances.size(),
      static_cast<unsigned long long>(failures_exercised),
      static_cast<unsigned long long>(divergences),
      static_cast<unsigned long long>(seed));
  return divergences == 0 ? 0 : 1;
}

}  // namespace
}  // namespace tupelo

int main(int argc, char** argv) {
  uint64_t exprs = 1200;
  uint64_t seed = 2006;
  size_t max_len = 7;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--exprs=", 8) == 0) {
      exprs = std::strtoull(arg + 8, nullptr, 10);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--max-len=", 10) == 0) {
      max_len = std::strtoull(arg + 10, nullptr, 10);
    } else if (std::strcmp(arg, "--quick") == 0) {
      quick = true;
    } else {
      std::fprintf(stderr,
                   "usage: equivalence_fuzz [--exprs=N] [--seed=S] "
                   "[--max-len=K] [--quick]\n");
      return 2;
    }
  }
  if (max_len == 0) max_len = 1;
  return tupelo::Run(exprs, seed, max_len, quick);
}
