#include "bench_util.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

namespace tupelo::bench {

RunResult Measure(const Database& source, const Database& target,
                  const TupeloOptions& options,
                  const FunctionRegistry* registry,
                  const std::vector<SemanticCorrespondence>& corrs) {
  Tupelo system(source, target);
  system.set_registry(registry);
  for (const SemanticCorrespondence& c : corrs) system.AddCorrespondence(c);

  auto start = std::chrono::steady_clock::now();
  Result<TupeloResult> result = system.Discover(options);
  auto end = std::chrono::steady_clock::now();

  RunResult out;
  out.millis =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          end - start)
          .count();
  if (!result.ok()) {
    std::fprintf(stderr, "discovery configuration error: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  out.found = result->found;
  out.cutoff = result->budget_exhausted;
  out.states = result->stats.states_examined;
  out.depth = result->stats.solution_cost;
  return out;
}

std::string FormatStates(const RunResult& r, uint64_t budget) {
  if (r.cutoff || (!r.found && r.states >= budget)) {
    return ">" + std::to_string(budget) + "*";
  }
  if (!r.found) return "fail";
  return std::to_string(r.states);
}

void PrintRow(const std::vector<std::string>& cells, int width) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

BenchArgs ParseBenchArgs(int argc, char** argv,
                         uint64_t default_budget) {
  BenchArgs args;
  args.budget = default_budget;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--budget=", 0) == 0) {
      args.budget = std::strtoull(argv[i] + std::strlen("--budget="),
                                  nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      args.seed =
          std::strtoull(argv[i] + std::strlen("--seed="), nullptr, 10);
    } else if (arg == "--quick") {
      args.quick = true;
    }
  }
  return args;
}

}  // namespace tupelo::bench
