#include "bench_util.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <utility>

#include "common/simd/dispatch.h"

namespace tupelo::bench {

RunResult Measure(const Database& source, const Database& target,
                  const TupeloOptions& options,
                  const FunctionRegistry* registry,
                  const std::vector<SemanticCorrespondence>& corrs,
                  obs::MetricRegistry* metrics) {
  Tupelo system(source, target);
  system.set_registry(registry);
  for (const SemanticCorrespondence& c : corrs) system.AddCorrespondence(c);

  TupeloOptions run_options = options;
  run_options.metrics = metrics;

  auto start = std::chrono::steady_clock::now();
  Result<TupeloResult> result = system.Discover(run_options);
  auto end = std::chrono::steady_clock::now();

  RunResult out;
  out.millis =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          end - start)
          .count();
  if (!result.ok()) {
    std::fprintf(stderr, "discovery configuration error: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  out.found = result->found;
  out.cutoff = result->budget_exhausted;
  out.stop_reason = std::string(StopReasonName(result->stop_reason));
  out.verified = result->verified;
  if (!result->verify_status.ok()) {
    out.verify_error = result->verify_status.ToString();
  }
  out.deadline_millis = run_options.limits.deadline_millis;
  out.states = result->stats.states_examined;
  out.states_generated = result->stats.states_generated;
  out.iterations = result->stats.iterations;
  out.peak_memory_nodes = result->stats.peak_memory_nodes;
  out.depth = result->stats.solution_cost;
  out.resumed = result->resumed;
  out.checkpoint_writes = result->checkpoint_writes;
  return out;
}

std::string FormatStates(const RunResult& r, uint64_t budget) {
  if (r.cutoff || (!r.found && r.states >= budget)) {
    return ">" + std::to_string(budget) + "*";
  }
  if (!r.found) return "fail";
  return std::to_string(r.states);
}

void PrintRow(const std::vector<std::string>& cells, int width) {
  for (const std::string& cell : cells) {
    std::printf("%-*s", width, cell.c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

BenchArgs ParseBenchArgs(int argc, char** argv,
                         uint64_t default_budget) {
  BenchArgs args;
  args.budget = default_budget;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg.rfind("--budget=", 0) == 0) {
      args.budget = std::strtoull(argv[i] + std::strlen("--budget="),
                                  nullptr, 10);
    } else if (arg.rfind("--seed=", 0) == 0) {
      args.seed =
          std::strtoull(argv[i] + std::strlen("--seed="), nullptr, 10);
    } else if (arg.rfind("--json=", 0) == 0) {
      args.json_path = std::string(arg.substr(std::strlen("--json=")));
    } else if (arg.rfind("--threads=", 0) == 0) {
      args.threads = std::strtoull(argv[i] + std::strlen("--threads="),
                                   nullptr, 10);
      if (args.threads == 0) args.threads = 1;
    } else if (arg.rfind("--algo=", 0) == 0) {
      args.algo = std::string(arg.substr(std::strlen("--algo=")));
    } else if (arg.rfind("--trace-buffer-kb=", 0) == 0) {
      args.trace_buffer_kb = std::strtoull(
          argv[i] + std::strlen("--trace-buffer-kb="), nullptr, 10);
      if (args.trace_buffer_kb == 0) args.trace_buffer_kb = 256;
    } else if (arg.rfind("--trace=", 0) == 0) {
      args.trace_path = std::string(arg.substr(std::strlen("--trace=")));
    } else if (arg == "--flight-recorder") {
      args.flight_recorder = true;
    } else if (arg == "--quick") {
      args.quick = true;
    }
  }
  if (args.flight_recorder && args.trace_path.empty()) {
    std::fprintf(stderr, "--flight-recorder requires --trace=path\n");
    std::exit(2);
  }
  return args;
}

BenchTrace::BenchTrace(const BenchArgs& args) : path_(args.trace_path) {
  if (path_.empty()) return;
  session_ = std::make_unique<obs::TraceSession>(
      static_cast<size_t>(args.trace_buffer_kb));
  if (args.flight_recorder) flight_path_ = path_ + ".flight";
}

BenchTrace::~BenchTrace() = default;

void BenchTrace::Apply(TupeloOptions& options) {
  if (session_ == nullptr) return;
  options.trace = session_.get();
  options.flight_recorder_path = flight_path_;
}

void BenchTrace::AnnotateRun(obs::JsonValue& run) {
  if (session_ == nullptr) return;
  const uint64_t recorded = session_->events_recorded();
  const uint64_t dropped = session_->events_dropped();
  run["trace_path"] = path_;
  run["trace_events"] = recorded - last_recorded_;
  run["trace_dropped"] = dropped - last_dropped_;
  last_recorded_ = recorded;
  last_dropped_ = dropped;
}

bool BenchTrace::Write() const {
  if (session_ == nullptr) return true;
  return session_->WriteChromeJson(path_);
}

std::string GitSha() {
  FILE* pipe = ::popen("git rev-parse HEAD 2>/dev/null", "r");
  if (pipe == nullptr) return "unknown";
  char buf[64] = {0};
  std::string sha;
  if (std::fgets(buf, sizeof(buf), pipe) != nullptr) {
    sha = buf;
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
      sha.pop_back();
    }
  }
  ::pclose(pipe);
  return sha.size() == 40 ? sha : "unknown";
}

BenchReport::BenchReport(std::string harness, const BenchArgs& args)
    : enabled_(!args.json_path.empty()), path_(args.json_path) {
  if (!enabled_) return;
  root_ = obs::JsonValue::Object();
  root_["schema_version"] = 10;
  root_["harness"] = std::move(harness);
  root_["git_sha"] = GitSha();
  root_["seed"] = args.seed;
  root_["quick"] = args.quick;
  root_["budget"] = args.budget;
  root_["threads"] = args.threads;
  root_["simd_dispatch"] = std::string(simd::LevelName(simd::ActiveLevel()));
  root_["panels"] = obs::JsonValue::Array();
}

void BenchReport::BeginPanel(const std::string& name) {
  if (!enabled_) return;
  obs::JsonValue panel = obs::JsonValue::Object();
  panel["name"] = name;
  panel["runs"] = obs::JsonValue::Array();
  root_["panels"].Append(std::move(panel));
}

obs::JsonValue BenchReport::MakeRun(const RunResult& r) {
  obs::JsonValue run = obs::JsonValue::Object();
  run["found"] = r.found;
  run["cutoff"] = r.cutoff;
  run["stop_reason"] = r.stop_reason;
  run["verified"] = r.verified;
  run["verify_error"] = r.verify_error;
  run["deadline_millis"] = r.deadline_millis;
  run["states_examined"] = r.states;
  run["states_generated"] = r.states_generated;
  run["iterations"] = r.iterations;
  run["peak_memory_nodes"] = r.peak_memory_nodes;
  run["solution_cost"] = r.depth;
  run["wall_millis"] = r.millis;
  run["resumed"] = r.resumed;
  run["checkpoint_writes"] = r.checkpoint_writes;
  return run;
}

void BenchReport::AddRun(obs::JsonValue run) {
  if (!enabled_) return;
  obs::JsonValue& panels = root_["panels"];
  if (panels.size() == 0) BeginPanel("default");
  panels.elements().back()["runs"].Append(std::move(run));
}

bool BenchReport::Write() const {
  if (!enabled_) return true;
  FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write JSON report to %s\n", path_.c_str());
    return false;
  }
  std::string text = root_.Dump(2);
  text += "\n";
  bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok) {
    std::fprintf(stderr, "short write for JSON report %s\n", path_.c_str());
  }
  return ok;
}

}  // namespace tupelo::bench
