// Regenerates Figure 6 (§5.1): RBFS on synthetic schema matching.

#include "synthetic_panels.h"

int main(int argc, char** argv) {
  tupelo::bench::BenchArgs args = tupelo::bench::ParseBenchArgs(argc, argv);
  tupelo::bench::RunSyntheticPanels(tupelo::SearchAlgorithm::kRbfs, args);
  return 0;
}
