// bench_apply: the production-apply benchmark for discovered mappings.
// The figure harnesses measure *discovery*; this one measures what the
// paper's deployment story actually runs afterwards — applying a found
// expression to full-size instances (10^5–10^6 tuples) — and compares
// the operator-at-a-time interpreter against the CompiledExecutor's
// fused loops (fira/compile.h) on the common discovered shapes.
//
// Each case runs both executors over the same instance, verifies the
// outputs are identical, and reports per-apply wall time. With --json=,
// a schema-9 BenchReport lands two runs per (case, size) — one per
// executor, the compiled one carrying "speedup" and the plan shape. The
// apply_smoke ctest runs `--quick --json=` and validates the report;
// the committed BENCH_apply.json is a full (non-quick) run.
//
//   bench_apply [--quick] [--seed=S] [--json=PATH]

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "fira/builtin_functions.h"
#include "fira/compile.h"
#include "fira/expression.h"
#include "fira/function_registry.h"
#include "fira/operators.h"
#include "relational/database.h"

namespace tupelo {
namespace {

// The apply instance: one wide fact relation R(K, P, A, B, C, D) with
// `rows` tuples (P holds pointer atoms, mostly resolvable) and a small
// dimension relation S(S1, S2) for the product case.
Database MakeInstance(size_t rows, size_t dim_rows, uint64_t seed) {
  std::mt19937_64 rng(seed);
  const char* pointers[] = {"A", "B", "C", "D", "K", "nope"};
  Result<Relation> r =
      Relation::Create("R", {"K", "P", "A", "B", "C", "D"});
  r->ReserveTuples(rows);
  for (size_t i = 0; i < rows; ++i) {
    std::string k = "k" + std::to_string(i);
    std::vector<Value> vs;
    vs.reserve(6);
    vs.emplace_back(Value(k));
    vs.emplace_back(rng() % 16 == 0 ? Value()
                                    : Value(pointers[rng() % 6]));
    vs.emplace_back(Value("a" + std::to_string(rng() % 997)));
    vs.emplace_back(rng() % 8 == 0 ? Value()
                                   : Value("b" + std::to_string(rng() % 97)));
    vs.emplace_back(Value("c" + std::to_string(rng() % 31)));
    vs.emplace_back(Value("d" + std::to_string(rng() % 7)));
    (void)r->AddTuple(Tuple(std::move(vs)));
  }
  Result<Relation> s = Relation::Create("S", {"S1", "S2"});
  for (size_t i = 0; i < dim_rows; ++i) {
    (void)s->AddRow({"s" + std::to_string(i), "t" + std::to_string(i % 3)});
  }
  Database db;
  db.PutRelation(std::move(r).value());
  db.PutRelation(std::move(s).value());
  return db;
}

struct ApplyCase {
  std::string name;
  MappingExpression expr;
  // R gets `size / rows_div` tuples so the case's *output* stays at the
  // nominal size (the product case multiplies by the dimension rows).
  size_t rows_div = 1;
};

std::vector<ApplyCase> Cases(size_t dim_rows) {
  std::vector<ApplyCase> cases;
  // The shapes search actually discovers: long rename detours, renames
  // collapsing into projections, pointer chasing plus a λ, and a product
  // immediately trimmed back down.
  cases.push_back({"apply_rename_chain",
                   MappingExpression(std::vector<Op>{
                       RenameAttrOp{"R", "A", "A1"},
                       RenameAttrOp{"R", "B", "B1"},
                       RenameAttrOp{"R", "C", "C1"},
                       RenameAttrOp{"R", "D", "D1"},
                       RenameAttrOp{"R", "A1", "A2"},
                       RenameRelOp{"R", "Out"},
                   })});
  cases.push_back({"apply_rename_drop",
                   MappingExpression(std::vector<Op>{
                       RenameAttrOp{"R", "A", "X"},
                       DropOp{"R", "X"},
                       DropOp{"R", "B"},
                       RenameAttrOp{"R", "C", "Y"},
                       DropOp{"R", "D"},
                   })});
  cases.push_back({"apply_deref_lambda",
                   MappingExpression(std::vector<Op>{
                       DereferenceOp{"R", "P", "V"},
                       ApplyFunctionOp{"R", "concat", {"K", "V"}, "W"},
                       DropOp{"R", "A"},
                       DropOp{"R", "B"},
                   })});
  cases.push_back({"apply_product_trim",
                   MappingExpression(std::vector<Op>{
                       ProductOp{"R", "S"},
                       DropOp{"R*S", "A"},
                       DropOp{"R*S", "B"},
                       DropOp{"R*S", "C"},
                       DropOp{"R*S", "D"},
                       DropOp{"R*S", "S2"},
                   }),
                   dim_rows});
  return cases;
}

// Best-of-`reps` wall nanoseconds of one apply, plus the (verified
// identical) output of the last rep.
template <typename Apply>
double MeasureNs(int reps, Result<Database>* out, Apply apply) {
  double best = 0;
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    Result<Database> result = apply();
    auto end = std::chrono::steady_clock::now();
    double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
    if (i == 0 || ns < best) best = ns;
    *out = std::move(result);
  }
  return best;
}

int Run(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv, 250000);
  bench::BenchReport report("apply", args);

  FunctionRegistry registry;
  if (Status st = RegisterBuiltinFunctions(&registry); !st.ok()) {
    std::fprintf(stderr, "builtin registration failed: %s\n",
                 st.message().c_str());
    return 1;
  }

  std::vector<size_t> sizes = {100000, 300000, 1000000};
  if (args.quick) sizes = {20000, 50000};
  const size_t dim_rows = 8;

  std::printf("# bench_apply: interpreter vs compiled executor\n");
  bench::PrintRow({"case", "tuples", "interp_ms", "compiled_ms", "speedup",
                   "fused"},
                  19);

  bool all_equal = true;
  for (const ApplyCase& c : Cases(dim_rows)) {
    report.BeginPanel(c.name);
    CompiledExecutor compiled(c.expr);
    for (size_t size : sizes) {
      const size_t rows = std::max<size_t>(1, size / c.rows_div);
      Database db = MakeInstance(rows, dim_rows, args.seed + size);
      const int reps = size >= 500000 ? 2 : 3;

      Result<Database> interp_out = Status::Internal("not run");
      double interp_ns = MeasureNs(reps, &interp_out, [&] {
        return c.expr.Apply(db, &registry);
      });
      Result<Database> compiled_out = Status::Internal("not run");
      double compiled_ns = MeasureNs(reps, &compiled_out, [&] {
        return compiled.Apply(db, &registry);
      });

      const bool equal = interp_out.ok() && compiled_out.ok() &&
                         interp_out->ContentsEqual(*compiled_out);
      if (!equal) {
        all_equal = false;
        std::fprintf(stderr, "OUTPUT MISMATCH: %s at %zu tuples\n",
                     c.name.c_str(), rows);
      }
      const double speedup = compiled_ns > 0 ? interp_ns / compiled_ns : 0;

      auto ms = [](double ns) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f", ns / 1e6);
        return std::string(buf);
      };
      char speedup_buf[32];
      std::snprintf(speedup_buf, sizeof(speedup_buf), "%.2fx", speedup);
      bench::PrintRow({c.name, std::to_string(rows), ms(interp_ns),
                       ms(compiled_ns), std::string(speedup_buf),
                       std::to_string(compiled.plan().fused_ops) + "/" +
                           std::to_string(c.expr.steps().size())},
                      19);

      if (report.enabled()) {
        // One run per executor. The apply harness does not search, so
        // the standard discovery fields record the verification outcome:
        // found/verified = both executors produced the identical
        // database.
        bench::RunResult base;
        base.found = true;
        base.stop_reason = "found";
        base.verified = equal;
        base.verify_error = equal ? "" : "executor outputs differ";
        base.depth = static_cast<int>(c.expr.steps().size());

        bench::RunResult interp_run = base;
        interp_run.millis = interp_ns / 1e6;
        obs::JsonValue run = bench::BenchReport::MakeRun(interp_run);
        run["executor"] = std::string("interpreter");
        run["case"] = c.name;
        run["tuples"] = static_cast<uint64_t>(rows);
        run["apply_ns"] = interp_ns;
        report.AddRun(std::move(run));

        bench::RunResult compiled_run = base;
        compiled_run.millis = compiled_ns / 1e6;
        obs::JsonValue crun = bench::BenchReport::MakeRun(compiled_run);
        crun["executor"] = std::string("compiled");
        crun["case"] = c.name;
        crun["tuples"] = static_cast<uint64_t>(rows);
        crun["apply_ns"] = compiled_ns;
        crun["speedup"] = speedup;
        crun["fused_ops"] =
            static_cast<uint64_t>(compiled.plan().fused_ops);
        crun["interpreted_ops"] =
            static_cast<uint64_t>(compiled.plan().interpreted_ops);
        crun["segments"] =
            static_cast<uint64_t>(compiled.plan().segments.size());
        report.AddRun(std::move(crun));
      }
    }
  }

  bool ok = report.Write() && all_equal;
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace tupelo

int main(int argc, char** argv) { return tupelo::Run(argc, argv); }
