// Ablation: plain A* (the paper's abandoned first implementation) vs the
// linear-memory IDA*/RBFS. Reports states examined AND peak tracked
// memory (open+closed entries for A*, recursion depth for IDA*/RBFS),
// substantiating §2.3's remark that A*'s exponential memory made early
// TUPELO implementations ineffective.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/mapping_problem.h"
#include "heuristics/heuristic_factory.h"
#include "search/a_star.h"
#include "search/ida_star.h"
#include "search/rbfs.h"
#include "workloads/synthetic.h"

int main(int argc, char** argv) {
  using namespace tupelo;
  using namespace tupelo::bench;

  BenchArgs args = ParseBenchArgs(argc, argv, 250000);
  std::printf("# Ablation: A* baseline vs linear-memory IDA*/RBFS\n");
  std::printf("# synthetic schema matching, h1; budget=%llu\n\n",
              static_cast<unsigned long long>(args.budget));
  PrintRow({"n", "algo", "states", "peak_memory", "depth"}, 14);

  std::vector<size_t> sizes = {2, 4, 6, 8, 10, 12};
  if (args.quick) sizes = {2, 4, 8};

  BenchReport report("ablation_astar", args);
  BenchTrace trace(args);
  report.BeginPanel("memory_comparison");

  for (size_t n : sizes) {
    SyntheticMatchingPair pair = MakeSyntheticMatchingPair(n);
    for (SearchAlgorithm algo :
         {SearchAlgorithm::kAStar, SearchAlgorithm::kIda,
          SearchAlgorithm::kRbfs}) {
      MappingProblem problem(
          pair.source, pair.target,
          MakeHeuristic(HeuristicKind::kH1, pair.target, algo));
      obs::MetricRegistry registry;
      obs::MetricRegistry* metrics = report.enabled() ? &registry : nullptr;
      problem.set_metrics(metrics);
      problem.set_trace(trace.session());
      SearchLimits limits;
      limits.max_states = args.budget;
      limits.max_depth = static_cast<int>(n) + 4;

      auto start = std::chrono::steady_clock::now();
      SearchOutcome<Op> outcome;
      switch (algo) {
        case SearchAlgorithm::kAStar:
          outcome = AStarSearch(problem, limits, nullptr, metrics,
                                nullptr, trace.session());
          break;
        case SearchAlgorithm::kIda:
          outcome = IdaStarSearch(problem, limits, nullptr, metrics,
                                  nullptr, trace.session());
          break;
        case SearchAlgorithm::kRbfs:
          outcome = RbfsSearch(problem, limits, nullptr, metrics,
                               nullptr, trace.session());
          break;
        default:
          continue;  // memory comparison covers the three paper algorithms
      }
      double millis = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
      if (report.enabled()) {
        RunResult r;
        r.found = outcome.found;
        r.cutoff = outcome.budget_exhausted;
        r.states = outcome.stats.states_examined;
        r.states_generated = outcome.stats.states_generated;
        r.iterations = outcome.stats.iterations;
        r.peak_memory_nodes = outcome.stats.peak_memory_nodes;
        r.depth = outcome.stats.solution_cost;
        r.millis = millis;
        obs::JsonValue run = BenchReport::MakeRun(r);
        run["n"] = static_cast<uint64_t>(n);
        run["algo"] = std::string(SearchAlgorithmName(algo));
        run["metrics"] = registry.ToJson();
        trace.AnnotateRun(run);
        report.AddRun(std::move(run));
      }
      PrintRow({std::to_string(n),
                std::string(SearchAlgorithmName(algo)),
                outcome.found ? std::to_string(outcome.stats.states_examined)
                              : ">" + std::to_string(args.budget) + "*",
                std::to_string(outcome.stats.peak_memory_nodes),
                std::to_string(outcome.stats.solution_cost)},
               14);
    }
  }
  report.Write();
  trace.Write();
  std::printf(
      "\n# peak_memory: A* counts retained open+closed states; IDA*/RBFS "
      "count recursion depth.\n");
  return 0;
}
