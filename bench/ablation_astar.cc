// Ablation: plain A* (the paper's abandoned first implementation) vs the
// linear-memory IDA*/RBFS. Reports states examined AND peak tracked
// memory (open+closed entries for A*, recursion depth for IDA*/RBFS),
// substantiating §2.3's remark that A*'s exponential memory made early
// TUPELO implementations ineffective.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/mapping_problem.h"
#include "heuristics/heuristic_factory.h"
#include "search/a_star.h"
#include "search/ida_star.h"
#include "search/rbfs.h"
#include "workloads/synthetic.h"

int main(int argc, char** argv) {
  using namespace tupelo;
  using namespace tupelo::bench;

  BenchArgs args = ParseBenchArgs(argc, argv, 250000);
  std::printf("# Ablation: A* baseline vs linear-memory IDA*/RBFS\n");
  std::printf("# synthetic schema matching, h1; budget=%llu\n\n",
              static_cast<unsigned long long>(args.budget));
  PrintRow({"n", "algo", "states", "peak_memory", "depth"}, 14);

  std::vector<size_t> sizes = {2, 4, 6, 8, 10, 12};
  if (args.quick) sizes = {2, 4, 8};

  for (size_t n : sizes) {
    SyntheticMatchingPair pair = MakeSyntheticMatchingPair(n);
    for (SearchAlgorithm algo :
         {SearchAlgorithm::kAStar, SearchAlgorithm::kIda,
          SearchAlgorithm::kRbfs}) {
      MappingProblem problem(
          pair.source, pair.target,
          MakeHeuristic(HeuristicKind::kH1, pair.target, algo));
      SearchLimits limits;
      limits.max_states = args.budget;
      limits.max_depth = static_cast<int>(n) + 4;

      SearchOutcome<Op> outcome;
      switch (algo) {
        case SearchAlgorithm::kAStar:
          outcome = AStarSearch(problem, limits);
          break;
        case SearchAlgorithm::kIda:
          outcome = IdaStarSearch(problem, limits);
          break;
        case SearchAlgorithm::kRbfs:
          outcome = RbfsSearch(problem, limits);
          break;
        default:
          continue;  // memory comparison covers the three paper algorithms
      }
      PrintRow({std::to_string(n),
                std::string(SearchAlgorithmName(algo)),
                outcome.found ? std::to_string(outcome.stats.states_examined)
                              : ">" + std::to_string(args.budget) + "*",
                std::to_string(outcome.stats.peak_memory_nodes),
                std::to_string(outcome.stats.solution_cost)},
               14);
    }
  }
  std::printf(
      "\n# peak_memory: A* counts retained open+closed states; IDA*/RBFS "
      "count recursion depth.\n");
  return 0;
}
