// Regenerates Figure 5 (§5.1): IDA* on synthetic schema matching.

#include "synthetic_panels.h"

int main(int argc, char** argv) {
  tupelo::bench::BenchArgs args = tupelo::bench::ParseBenchArgs(argc, argv);
  tupelo::bench::RunSyntheticPanels(tupelo::SearchAlgorithm::kIda, args);
  return 0;
}
