#ifndef TUPELO_BENCH_SYNTHETIC_PANELS_H_
#define TUPELO_BENCH_SYNTHETIC_PANELS_H_

// Shared implementation of Figures 5 and 6 (Experiment 1, §5.1): schema
// matching on synthetic n-attribute schema pairs.
//
// Left panel (paper): states examined vs schema size n = 2..32 for the
// set-based heuristics. h2 is blind on this workload (no misplaced
// symbols), so it tracks h0; h3 = max(h1, h2) tracks h1 — both identities
// are measured, not assumed, and the harness prints them.
//
// Right panel: the vector/string heuristics on n = 1..8.
//
// A heuristic that exhausts the state budget at size n is not run at
// larger sizes (printed as "-").

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workloads/synthetic.h"

namespace tupelo::bench {

inline void RunSyntheticPanels(SearchAlgorithm algo, const BenchArgs& args) {
  // --algo= overrides the harness's default algorithm (e.g. to measure the
  // fig5 panels under the parallel beam); the report keeps the harness
  // name so records stay attributable to the figure axes.
  std::string harness = algo == SearchAlgorithm::kIda ? "fig5_synthetic_ida"
                                                      : "fig6_synthetic_rbfs";
  if (!args.algo.empty()) {
    if (auto parsed = ParseSearchAlgorithm(args.algo)) algo = *parsed;
  }
  std::printf("# Experiment 1 (synthetic schema matching), %s, threads=%llu\n",
              std::string(SearchAlgorithmName(algo)).c_str(),
              static_cast<unsigned long long>(args.threads));
  std::printf("# measure: states examined; budget=%llu states\n\n",
              static_cast<unsigned long long>(args.budget));

  BenchReport report(harness, args);
  BenchTrace trace(args);

  auto run_panel = [&](const std::string& panel_name,
                       const std::vector<HeuristicKind>& kinds,
                       const std::vector<size_t>& sizes) {
    report.BeginPanel(panel_name);
    std::vector<std::string> header = {"n"};
    for (HeuristicKind kind : kinds) {
      header.emplace_back(HeuristicKindName(kind));
    }
    PrintRow(header);

    std::vector<bool> dead(kinds.size(), false);
    for (size_t n : sizes) {
      SyntheticMatchingPair pair = MakeSyntheticMatchingPair(n);
      std::vector<std::string> row = {std::to_string(n)};
      for (size_t i = 0; i < kinds.size(); ++i) {
        if (dead[i]) {
          row.emplace_back("-");
          continue;
        }
        TupeloOptions options;
        options.algorithm = algo;
        options.heuristic = kinds[i];
        options.threads = args.threads;
        options.limits.max_states = args.budget;
        options.limits.max_depth = static_cast<int>(n) + 4;
        trace.Apply(options);
        obs::MetricRegistry registry;
        RunResult r = Measure(pair.source, pair.target, options, nullptr, {},
                              report.enabled() ? &registry : nullptr);
        row.push_back(FormatStates(r, args.budget));
        if (report.enabled()) {
          obs::JsonValue run = BenchReport::MakeRun(r);
          run["n"] = static_cast<uint64_t>(n);
          run["heuristic"] = std::string(HeuristicKindName(kinds[i]));
          run["metrics"] = registry.ToJson();
          trace.AnnotateRun(run);
          report.AddRun(std::move(run));
        }
        if (!r.found) dead[i] = true;
      }
      PrintRow(row);
    }
    std::printf("\n");
  };

  std::printf("## set-based heuristics, n = 2..32 (paper Fig. %s left)\n",
              algo == SearchAlgorithm::kIda ? "5" : "6");
  std::vector<size_t> big_sizes = {2, 3, 4, 5, 6, 8, 10, 12, 16, 20, 24, 32};
  if (args.quick) big_sizes = {2, 4, 8, 16};
  run_panel("set_based",
            {HeuristicKind::kH0, HeuristicKind::kH1, HeuristicKind::kH2,
             HeuristicKind::kH3},
            big_sizes);

  std::printf("## vector/string heuristics, n = 1..8 (paper Fig. %s right)\n",
              algo == SearchAlgorithm::kIda ? "5" : "6");
  std::vector<size_t> small_sizes = {1, 2, 3, 4, 5, 6, 7, 8};
  if (args.quick) small_sizes = {1, 2, 4, 8};
  run_panel("vector_string",
            {HeuristicKind::kEuclidean, HeuristicKind::kEuclideanNorm,
             HeuristicKind::kCosine, HeuristicKind::kLevenshtein},
            small_sizes);

  report.Write();
  trace.Write();
}

}  // namespace tupelo::bench

#endif  // TUPELO_BENCH_SYNTHETIC_PANELS_H_
