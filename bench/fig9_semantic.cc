// Regenerates Figure 9 (§5.3): states examined for complex semantic
// mapping discovery in the Inventory domain (and, per the paper's remark
// that results were "essentially the same", Real Estate II) as the number
// of complex functions grows from 1 to 8, (a) IDA* and (b) RBFS.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workloads/semantic.h"

int main(int argc, char** argv) {
  using namespace tupelo;
  using namespace tupelo::bench;

  BenchArgs args = ParseBenchArgs(argc, argv, 20000);
  std::vector<SemanticDomain> domains = {SemanticDomain::kInventory};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--domain=realestate") == 0) {
      domains = {SemanticDomain::kRealEstate};
    } else if (std::strcmp(argv[i], "--domain=all") == 0) {
      domains = {SemanticDomain::kInventory, SemanticDomain::kRealEstate};
    }
  }

  std::printf("# Experiment 3 (complex semantic mapping)\n");
  std::printf("# measure: states examined; budget=%llu\n\n",
              static_cast<unsigned long long>(args.budget));

  BenchReport report("fig9_semantic", args);
  BenchTrace trace(args);

  for (SemanticDomain domain : domains) {
    for (SearchAlgorithm algo :
         {SearchAlgorithm::kIda, SearchAlgorithm::kRbfs}) {
      std::printf("## Fig. 9(%s): %s, %s\n",
                  algo == SearchAlgorithm::kIda ? "a" : "b",
                  std::string(SemanticDomainName(domain)).c_str(),
                  std::string(SearchAlgorithmName(algo)).c_str());
      report.BeginPanel(std::string(SemanticDomainName(domain)) + "." +
                        std::string(SearchAlgorithmName(algo)));
      std::vector<std::string> header = {"#fns"};
      for (HeuristicKind kind : AllHeuristicKinds()) {
        header.emplace_back(HeuristicKindName(kind));
      }
      PrintRow(header);

      size_t max_fns = args.quick ? 4 : 8;
      std::vector<bool> dead(AllHeuristicKinds().size(), false);
      for (size_t k = 1; k <= max_fns; ++k) {
        SemanticWorkload w = MakeSemanticWorkload(domain, k);
        std::vector<std::string> row = {std::to_string(k)};
        for (size_t i = 0; i < AllHeuristicKinds().size(); ++i) {
          if (dead[i]) {
            row.emplace_back("-");
            continue;
          }
          TupeloOptions options;
          options.algorithm = algo;
          options.heuristic = AllHeuristicKinds()[i];
          options.limits.max_states = args.budget;
          options.limits.max_depth = static_cast<int>(k) + 6;
          trace.Apply(options);
          obs::MetricRegistry registry;
          RunResult r = Measure(w.source, w.target, options, &w.registry,
                                w.correspondences,
                                report.enabled() ? &registry : nullptr);
          row.push_back(FormatStates(r, args.budget));
          if (report.enabled()) {
            obs::JsonValue run = BenchReport::MakeRun(r);
            run["functions"] = static_cast<uint64_t>(k);
            run["heuristic"] =
                std::string(HeuristicKindName(AllHeuristicKinds()[i]));
            run["metrics"] = registry.ToJson();
            trace.AnnotateRun(run);
            report.AddRun(std::move(run));
          }
          if (!r.found) dead[i] = true;
        }
        PrintRow(row);
      }
      std::printf("\n");
    }
  }
  report.Write();
  trace.Write();
  return 0;
}
