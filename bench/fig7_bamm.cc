// Regenerates Figure 7 (§5.2): average states examined for mapping
// discovery per BAMM domain, (a) IDA* and (b) RBFS, all eight heuristics.

#include <cstdio>

#include "bamm_panels.h"

int main(int argc, char** argv) {
  using namespace tupelo;
  using namespace tupelo::bench;

  BenchArgs args = ParseBenchArgs(argc, argv, 20000);
  std::printf("# Experiment 2 (BAMM deep-web schema matching)\n");
  std::printf(
      "# measure: average states examined per domain; budget=%llu; "
      "seed=%llu\n# '(kx)' marks k budget cutoffs counted at the budget "
      "value\n\n",
      static_cast<unsigned long long>(args.budget),
      static_cast<unsigned long long>(args.seed));

  BenchReport report("fig7_bamm", args);
  BenchTrace trace(args);
  BammTable table = RunBammExperiment(args, &report, &trace);

  for (SearchAlgorithm algo :
       {SearchAlgorithm::kIda, SearchAlgorithm::kRbfs}) {
    std::printf("## Fig. 7(%s): %s\n",
                algo == SearchAlgorithm::kIda ? "a" : "b",
                std::string(SearchAlgorithmName(algo)).c_str());
    std::vector<std::string> header = {"domain"};
    for (HeuristicKind kind : AllHeuristicKinds()) {
      header.emplace_back(HeuristicKindName(kind));
    }
    PrintRow(header);
    for (BammDomain domain : AllBammDomains()) {
      std::vector<std::string> row = {std::string(BammDomainName(domain))};
      for (HeuristicKind kind : AllHeuristicKinds()) {
        row.push_back(FormatAvg(table[domain][algo][kind]));
      }
      PrintRow(row);
    }
    std::printf("\n");
  }
  report.Write();
  trace.Write();
  return 0;
}
