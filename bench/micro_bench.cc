// google-benchmark microbenchmarks for TUPELO's substrates: operator
// application, TNF encoding, state fingerprinting, heuristic evaluation,
// and successor expansion. These are per-state costs — the multipliers
// behind every "states examined" number in the figure harnesses.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/mapping_problem.h"
#include "core/tupelo.h"
#include "fira/executor.h"
#include "heuristics/heuristic_factory.h"
#include "heuristics/levenshtein.h"
#include "heuristics/term_vector.h"
#include "relational/tnf.h"
#include "workloads/flights.h"
#include "workloads/synthetic.h"

namespace tupelo {
namespace {

Database WideDatabase(size_t n) {
  return MakeSyntheticMatchingPair(n).source;
}

void BM_ApplyPromote(benchmark::State& state) {
  Database db = MakeFlightsB();
  PromoteOp op{"Prices", "Route", "Cost"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApplyOp(op, db));
  }
}
BENCHMARK(BM_ApplyPromote);

// Same operator with per-operator metrics attached: the executor's
// instrumented path (count + ScopedTimer + failure tracking). Compare to
// BM_ApplyPromote to bound the observability overhead; with metrics null
// (BM_ApplyPromote) the instrumented code is bypassed entirely.
void BM_ApplyPromoteWithMetrics(benchmark::State& state) {
  Database db = MakeFlightsB();
  PromoteOp op{"Prices", "Route", "Cost"};
  obs::MetricRegistry registry;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApplyOp(op, db, nullptr, &registry));
  }
}
BENCHMARK(BM_ApplyPromoteWithMetrics);

void BM_ApplyDemote(benchmark::State& state) {
  Database db = MakeFlightsB();
  DemoteOp op{"Prices"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApplyOp(op, db));
  }
}
BENCHMARK(BM_ApplyDemote);

void BM_ApplyMerge(benchmark::State& state) {
  Database db = MakeFlightsB();
  db = ApplyOp(PromoteOp{"Prices", "Route", "Cost"}, db).value();
  db = ApplyOp(DropOp{"Prices", "Route"}, db).value();
  db = ApplyOp(DropOp{"Prices", "Cost"}, db).value();
  MergeOp op{"Prices", "Carrier"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApplyOp(op, db));
  }
}
BENCHMARK(BM_ApplyMerge);

void BM_ApplyRename(benchmark::State& state) {
  Database db = WideDatabase(static_cast<size_t>(state.range(0)));
  RenameAttrOp op{"R", "A1", "ZZ"};
  if (static_cast<size_t>(state.range(0)) > 9) op.from = "A01";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApplyOp(op, db));
  }
}
BENCHMARK(BM_ApplyRename)->Arg(4)->Arg(16)->Arg(32);

void BM_TnfEncode(benchmark::State& state) {
  Database db = WideDatabase(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeTnf(db));
  }
}
BENCHMARK(BM_TnfEncode)->Arg(4)->Arg(16)->Arg(32);

void BM_Fingerprint(benchmark::State& state) {
  Database db = WideDatabase(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Fingerprint());
  }
}
BENCHMARK(BM_Fingerprint)->Arg(4)->Arg(16)->Arg(32);

void BM_Containment(benchmark::State& state) {
  SyntheticMatchingPair pair =
      MakeSyntheticMatchingPair(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pair.source.Contains(pair.source));
  }
}
BENCHMARK(BM_Containment)->Arg(4)->Arg(16)->Arg(32);

void BM_HeuristicEval(benchmark::State& state) {
  HeuristicKind kind = static_cast<HeuristicKind>(state.range(0));
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(8);
  std::unique_ptr<Heuristic> h =
      MakeHeuristic(kind, pair.target, SearchAlgorithm::kRbfs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h->Estimate(pair.source));
  }
  state.SetLabel(std::string(HeuristicKindName(kind)));
}
BENCHMARK(BM_HeuristicEval)
    ->Arg(static_cast<int>(HeuristicKind::kH1))
    ->Arg(static_cast<int>(HeuristicKind::kH2))
    ->Arg(static_cast<int>(HeuristicKind::kLevenshtein))
    ->Arg(static_cast<int>(HeuristicKind::kEuclidean))
    ->Arg(static_cast<int>(HeuristicKind::kCosine));

void BM_Levenshtein(benchmark::State& state) {
  std::string a(static_cast<size_t>(state.range(0)), 'a');
  std::string b = a;
  for (size_t i = 0; i < b.size(); i += 3) b[i] = 'b';
  for (auto _ : state) {
    benchmark::DoNotOptimize(LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_Levenshtein)->Arg(32)->Arg(256)->Arg(1024);

void BM_Expand(benchmark::State& state) {
  SyntheticMatchingPair pair =
      MakeSyntheticMatchingPair(static_cast<size_t>(state.range(0)));
  MappingProblem problem(
      pair.source, pair.target,
      MakeHeuristic(HeuristicKind::kH1, pair.target, SearchAlgorithm::kRbfs));
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.Expand(pair.source));
  }
}
BENCHMARK(BM_Expand)->Arg(2)->Arg(4)->Arg(8);

void BM_DiscoverSyntheticRbfsH1(benchmark::State& state) {
  SyntheticMatchingPair pair =
      MakeSyntheticMatchingPair(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    TupeloOptions options;
    options.algorithm = SearchAlgorithm::kRbfs;
    options.heuristic = HeuristicKind::kH1;
    Result<TupeloResult> r =
        DiscoverMapping(pair.source, pair.target, options);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DiscoverSyntheticRbfsH1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace
}  // namespace tupelo

BENCHMARK_MAIN();
