// google-benchmark microbenchmarks for TUPELO's substrates: operator
// application, TNF encoding, state fingerprinting, heuristic evaluation,
// and successor expansion. These are per-state costs — the multipliers
// behind every "states examined" number in the figure harnesses.
//
// Two modes. Without --json=, the usual google-benchmark CLI. With
// --json=PATH (plus the shared --quick/--budget/--seed flags), a fixed
// deterministic measurement suite runs instead and writes a schema-3
// BenchReport: per-size discovery runs whose metrics carry the
// state.*/expand.* counters, each annotated with *_ns timings of the
// per-state substrates (fingerprinting, COW successor construction,
// cached and uncached expansion). The perf_smoke ctest target runs this
// mode and validates the report.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "common/hash.h"
#include "common/simd/dispatch.h"
#include "common/simd/edit_distance.h"
#include "core/mapping_problem.h"
#include "core/tupelo.h"
#include "fira/executor.h"
#include "heuristics/heuristic_factory.h"
#include "heuristics/levenshtein.h"
#include "heuristics/term_vector.h"
#include "relational/tnf.h"
#include "search/search_types.h"
#include "workloads/flights.h"
#include "workloads/synthetic.h"

namespace tupelo {
namespace {

Database WideDatabase(size_t n) {
  return MakeSyntheticMatchingPair(n).source;
}

// `k` copies of the n-attribute synthetic relation under distinct names.
// Exercises the case COW is for: a successor mutates one relation and
// shares the other k-1 with its parent.
Database MultiRelationDatabase(size_t k, size_t n) {
  Database db;
  Database wide = WideDatabase(n);
  const Relation& base = *wide.relations().begin()->second;
  for (size_t i = 0; i < k; ++i) {
    Relation rel = base;
    rel.set_name("R" + std::to_string(i + 1));
    db.PutRelation(std::move(rel));
  }
  return db;
}

void BM_ApplyPromote(benchmark::State& state) {
  Database db = MakeFlightsB();
  PromoteOp op{"Prices", "Route", "Cost"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApplyOp(op, db));
  }
}
BENCHMARK(BM_ApplyPromote);

// Same operator with per-operator metrics attached: the executor's
// instrumented path (count + ScopedTimer + failure tracking). Compare to
// BM_ApplyPromote to bound the observability overhead; with metrics null
// (BM_ApplyPromote) the instrumented code is bypassed entirely.
void BM_ApplyPromoteWithMetrics(benchmark::State& state) {
  Database db = MakeFlightsB();
  PromoteOp op{"Prices", "Route", "Cost"};
  obs::MetricRegistry registry;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApplyOp(op, db, nullptr, &registry));
  }
}
BENCHMARK(BM_ApplyPromoteWithMetrics);

void BM_ApplyDemote(benchmark::State& state) {
  Database db = MakeFlightsB();
  DemoteOp op{"Prices"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApplyOp(op, db));
  }
}
BENCHMARK(BM_ApplyDemote);

void BM_ApplyMerge(benchmark::State& state) {
  Database db = MakeFlightsB();
  db = ApplyOp(PromoteOp{"Prices", "Route", "Cost"}, db).value();
  db = ApplyOp(DropOp{"Prices", "Route"}, db).value();
  db = ApplyOp(DropOp{"Prices", "Cost"}, db).value();
  MergeOp op{"Prices", "Carrier"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApplyOp(op, db));
  }
}
BENCHMARK(BM_ApplyMerge);

void BM_ApplyRename(benchmark::State& state) {
  Database db = WideDatabase(static_cast<size_t>(state.range(0)));
  RenameAttrOp op{"R", "A1", "ZZ"};
  if (static_cast<size_t>(state.range(0)) > 9) op.from = "A01";
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApplyOp(op, db));
  }
}
BENCHMARK(BM_ApplyRename)->Arg(4)->Arg(16)->Arg(32);

void BM_TnfEncode(benchmark::State& state) {
  Database db = WideDatabase(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EncodeTnf(db));
  }
}
BENCHMARK(BM_TnfEncode)->Arg(4)->Arg(16)->Arg(32);

void BM_Fingerprint(benchmark::State& state) {
  Database db = WideDatabase(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.Fingerprint());
  }
}
BENCHMARK(BM_Fingerprint)->Arg(4)->Arg(16)->Arg(32);

// Re-inserts the relation each iteration, so the database fingerprint is
// recomputed from the relation's cached fingerprint (the incremental
// subtract/add path). Before the incremental scheme this walked every
// tuple of every relation through a string canonicalization.
void BM_FingerprintCold(benchmark::State& state) {
  Database db = WideDatabase(static_cast<size_t>(state.range(0)));
  std::string name = db.relations().begin()->first;
  for (auto _ : state) {
    Relation copy = *db.GetRelation(name).value();
    db.PutRelation(std::move(copy));
    benchmark::DoNotOptimize(db.Fingerprint());
  }
}
BENCHMARK(BM_FingerprintCold)->Arg(4)->Arg(16)->Arg(32);

// COW successor construction. Cold: a single wide relation, which the
// successor must clone anyway — no sharing to exploit. Shared: 32
// relations of which the successor mutates one and shares 31.
void BM_SuccessorCowCold(benchmark::State& state) {
  Database db = WideDatabase(32);
  RenameAttrOp op{"R", "A01", "ZZ"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApplyOp(op, db));
  }
}
BENCHMARK(BM_SuccessorCowCold);

void BM_SuccessorCowShared(benchmark::State& state) {
  Database db = MultiRelationDatabase(32, 4);
  RenameAttrOp op{"R1", "A1", "ZZ"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(ApplyOp(op, db));
  }
}
BENCHMARK(BM_SuccessorCowShared);

void BM_Containment(benchmark::State& state) {
  SyntheticMatchingPair pair =
      MakeSyntheticMatchingPair(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(pair.source.Contains(pair.source));
  }
}
BENCHMARK(BM_Containment)->Arg(4)->Arg(16)->Arg(32);

void BM_HeuristicEval(benchmark::State& state) {
  HeuristicKind kind = static_cast<HeuristicKind>(state.range(0));
  SyntheticMatchingPair pair = MakeSyntheticMatchingPair(8);
  std::unique_ptr<Heuristic> h =
      MakeHeuristic(kind, pair.target, SearchAlgorithm::kRbfs);
  for (auto _ : state) {
    benchmark::DoNotOptimize(h->Estimate(pair.source));
  }
  state.SetLabel(std::string(HeuristicKindName(kind)));
}
BENCHMARK(BM_HeuristicEval)
    ->Arg(static_cast<int>(HeuristicKind::kH1))
    ->Arg(static_cast<int>(HeuristicKind::kH2))
    ->Arg(static_cast<int>(HeuristicKind::kLevenshtein))
    ->Arg(static_cast<int>(HeuristicKind::kEuclidean))
    ->Arg(static_cast<int>(HeuristicKind::kCosine));

// Strings of length n differing every 3rd character — roughly the shape
// of two TNF encodings of sibling states.
std::pair<std::string, std::string> EditPair(size_t n) {
  std::string a(n, 'a');
  std::string b = a;
  for (size_t i = 0; i < b.size(); i += 3) b[i] = 'b';
  return {std::move(a), std::move(b)};
}

void BM_Levenshtein(benchmark::State& state) {
  auto [a, b] = EditPair(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_Levenshtein)->Arg(32)->Arg(256)->Arg(1024)->Arg(4096);

// The pinned-fallback path (TUPELO_SIMD=scalar), for the dispatched-vs-
// scalar speedup factor without rerunning under the env var.
void BM_LevenshteinScalar(benchmark::State& state) {
  auto [a, b] = EditPair(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(simd::EditDistanceScalar(a, b));
  }
}
BENCHMARK(BM_LevenshteinScalar)->Arg(32)->Arg(256)->Arg(1024)->Arg(4096);

// Asymmetric pair: a short pattern against a long text, the blocked-DP
// pattern-side-selection case (range(0) = pattern, range(1) = text).
void BM_LevenshteinAsym(benchmark::State& state) {
  auto [a, b] = EditPair(static_cast<size_t>(state.range(1)));
  a.resize(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LevenshteinDistance(a, b));
  }
}
BENCHMARK(BM_LevenshteinAsym)->Args({64, 1024})->Args({128, 4096});

// Full distance kit over two term vectors of ~3n nonzero coordinates:
// one DotMerge, one MinSumMerge, and the cached-sum identity forms.
void BM_TermVectorMerge(benchmark::State& state) {
  SyntheticMatchingPair pair =
      MakeSyntheticMatchingPair(static_cast<size_t>(state.range(0)));
  TermVector x = TermVector::FromDatabase(pair.source);
  TermVector y = TermVector::FromDatabase(pair.target);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TermVector::EuclideanDistance(x, y));
    benchmark::DoNotOptimize(TermVector::JaccardSimilarity(x, y));
  }
}
BENCHMARK(BM_TermVectorMerge)->Arg(4)->Arg(16)->Arg(32);

// One EstimateCostBatch round over a frontier's worth of successor
// states, miss path (caches trimmed each iteration): what a beam level
// pays per expansion with the levenshtein heuristic.
void BM_EstimateBatch(benchmark::State& state) {
  SyntheticMatchingPair pair =
      MakeSyntheticMatchingPair(static_cast<size_t>(state.range(0)));
  MappingProblem problem(pair.source, pair.target,
                         MakeHeuristic(HeuristicKind::kLevenshtein,
                                       pair.target, SearchAlgorithm::kRbfs));
  std::vector<MappingProblem::SuccessorT> successors =
      problem.Expand(pair.source);
  std::vector<const Database*> states;
  for (const auto& succ : successors) states.push_back(&succ.state);
  std::vector<int> out(states.size());
  for (auto _ : state) {
    problem.TrimCaches();
    problem.EstimateCostBatch(states, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(states.size()));
}
BENCHMARK(BM_EstimateBatch)->Arg(2)->Arg(4)->Arg(8);

// With the default config this measures the transposition-cache hit path
// (the first iteration populates it); BM_ExpandUncached disables the
// cache to measure true successor generation.
void BM_Expand(benchmark::State& state) {
  SyntheticMatchingPair pair =
      MakeSyntheticMatchingPair(static_cast<size_t>(state.range(0)));
  MappingProblem problem(
      pair.source, pair.target,
      MakeHeuristic(HeuristicKind::kH1, pair.target, SearchAlgorithm::kRbfs));
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.Expand(pair.source));
  }
}
BENCHMARK(BM_Expand)->Arg(2)->Arg(4)->Arg(8);

void BM_ExpandUncached(benchmark::State& state) {
  SyntheticMatchingPair pair =
      MakeSyntheticMatchingPair(static_cast<size_t>(state.range(0)));
  SuccessorConfig config;
  config.expand_cache_capacity = 0;
  MappingProblem problem(
      pair.source, pair.target,
      MakeHeuristic(HeuristicKind::kH1, pair.target, SearchAlgorithm::kRbfs),
      nullptr, {}, config);
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.Expand(pair.source));
  }
}
BENCHMARK(BM_ExpandUncached)->Arg(2)->Arg(4)->Arg(8);

// BM_ExpandUncached with a TraceSession attached: every Expand emits an
// expand span plus one op.* span per candidate operator. Compare to
// BM_ExpandUncached to bound the tracing overhead on the hottest path;
// with trace null the emit branches are never taken.
void BM_ExpandWithTrace(benchmark::State& state) {
  SyntheticMatchingPair pair =
      MakeSyntheticMatchingPair(static_cast<size_t>(state.range(0)));
  SuccessorConfig config;
  config.expand_cache_capacity = 0;
  MappingProblem problem(
      pair.source, pair.target,
      MakeHeuristic(HeuristicKind::kH1, pair.target, SearchAlgorithm::kRbfs),
      nullptr, {}, config);
  obs::TraceSession session;
  problem.set_trace(&session);
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.Expand(pair.source));
  }
}
BENCHMARK(BM_ExpandWithTrace)->Arg(2)->Arg(4)->Arg(8);

// The raw cost of one trace emit (ring store + steady-clock read),
// steady state: the thread buffer is registered on the first iteration
// and ring wraparound just overwrites.
void BM_TraceEmit(benchmark::State& state) {
  obs::TraceSession session;
  for (auto _ : state) {
    session.EmitInstant(obs::TraceCategory::kSearch, "bench.tick", "i", 1);
  }
}
BENCHMARK(BM_TraceEmit);

// One heartbeat stamp — what a supervised search adds at each amortized
// BudgetGuard poll tick (every 16 Check calls) and what the thread pool
// adds per task. Three relaxed atomic stores.
void BM_HeartbeatTick(benchmark::State& state) {
  HeartbeatSlot slot;
  uint64_t i = 0;
  for (auto _ : state) {
    slot.Beat(++i, 64);
    benchmark::DoNotOptimize(&slot);
  }
}
BENCHMARK(BM_HeartbeatTick);

// BM_ExpandUncached through the poison-state quarantine wrapper with a
// (miss-only) quarantine armed: one fingerprint lookup against an empty
// denylist plus the try/catch frame. Compare to BM_ExpandUncached to
// bound the supervised-Expand overhead; with quarantine null the wrapper
// is a plain forwarding call.
void BM_SupervisedExpand(benchmark::State& state) {
  SyntheticMatchingPair pair =
      MakeSyntheticMatchingPair(static_cast<size_t>(state.range(0)));
  SuccessorConfig config;
  config.expand_cache_capacity = 0;
  MappingProblem problem(
      pair.source, pair.target,
      MakeHeuristic(HeuristicKind::kH1, pair.target, SearchAlgorithm::kRbfs),
      nullptr, {}, config);
  StateQuarantine quarantine(1024);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GuardedExpand(problem, pair.source, &quarantine));
  }
}
BENCHMARK(BM_SupervisedExpand)->Arg(2)->Arg(4)->Arg(8);

void BM_DiscoverSyntheticRbfsH1(benchmark::State& state) {
  SyntheticMatchingPair pair =
      MakeSyntheticMatchingPair(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    TupeloOptions options;
    options.algorithm = SearchAlgorithm::kRbfs;
    options.heuristic = HeuristicKind::kH1;
    Result<TupeloResult> r =
        DiscoverMapping(pair.source, pair.target, options);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_DiscoverSyntheticRbfsH1)->Arg(2)->Arg(4)->Arg(8);

// ---------------------------------------------------------------------
// Deterministic --json mode (schema 3), for perf_smoke and BENCH_micro.

// Mean nanoseconds per call of `body` over `iters` calls.
template <typename Body>
double NanosPer(int iters, Body body) {
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < iters; ++i) body();
  auto end = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
             .count() /
         static_cast<double>(iters);
}

int RunJsonSuite(int argc, char** argv) {
  bench::BenchArgs args = bench::ParseBenchArgs(argc, argv, 50000);
  bench::BenchReport report("micro", args);
  bench::BenchTrace trace(args);
  std::printf("# micro_bench substrates; budget=%llu states\n",
              static_cast<unsigned long long>(args.budget));
  bench::PrintRow({"n", "fp_cold", "fp_cached", "succ_cold", "succ_shared",
                   "exp_uncached", "exp_cached", "states"});

  report.BeginPanel("substrates");
  std::vector<size_t> sizes = {2, 4, 8};
  if (args.quick) sizes = {2, 4};
  const int iters = args.quick ? 2000 : 20000;
  const int expand_iters = args.quick ? 50 : 200;

  // SIMD kernel timings (schema 8), size-independent — measured once and
  // stamped on every run so per-run rows stay self-contained. The active
  // dispatch tier lands in the report's simd_dispatch root field.
  const auto [edit_short_a, edit_short_b] = EditPair(64);
  const auto [edit_long_a, edit_long_b] = EditPair(1024);
  double edit_short = NanosPer(iters, [&, &a = edit_short_a,
                                       &b = edit_short_b] {
    benchmark::DoNotOptimize(LevenshteinDistance(a, b));
  });
  double edit_long = NanosPer(iters / 10 + 1, [&, &a = edit_long_a,
                                               &b = edit_long_b] {
    benchmark::DoNotOptimize(LevenshteinDistance(a, b));
  });
  const std::string hash_input(64, 'k');
  double term_hash = NanosPer(iters, [&] {
    benchmark::DoNotOptimize(HashBytes64(hash_input, 0));
  });
  SyntheticMatchingPair merge_pair = MakeSyntheticMatchingPair(16);
  TermVector merge_x = TermVector::FromDatabase(merge_pair.source);
  TermVector merge_y = TermVector::FromDatabase(merge_pair.target);
  double term_merge = NanosPer(iters, [&] {
    benchmark::DoNotOptimize(TermVector::EuclideanDistance(merge_x, merge_y));
  });
  MappingProblem batch_problem(
      merge_pair.source, merge_pair.target,
      MakeHeuristic(HeuristicKind::kLevenshtein, merge_pair.target,
                    SearchAlgorithm::kRbfs));
  std::vector<MappingProblem::SuccessorT> batch_succ =
      batch_problem.Expand(merge_pair.source);
  std::vector<const Database*> batch_states;
  for (const auto& succ : batch_succ) batch_states.push_back(&succ.state);
  std::vector<int> batch_out(batch_states.size());
  double estimate_batch = NanosPer(expand_iters, [&] {
    batch_problem.TrimCaches();
    batch_problem.EstimateCostBatch(batch_states, batch_out);
    benchmark::DoNotOptimize(batch_out.data());
  });

  for (size_t n : sizes) {
    SyntheticMatchingPair pair = MakeSyntheticMatchingPair(n);

    Database fp_db = pair.source;
    const std::string rname = fp_db.relations().begin()->first;
    double fp_cold = NanosPer(iters, [&] {
      Relation copy = *fp_db.GetRelation(rname).value();
      fp_db.PutRelation(std::move(copy));
      benchmark::DoNotOptimize(fp_db.Fingerprint());
    });
    double fp_cached = NanosPer(iters, [&] {
      benchmark::DoNotOptimize(fp_db.Fingerprint());
    });

    Database wide = WideDatabase(32);
    RenameAttrOp cold_op{"R", "A01", "ZZ"};
    double succ_cold = NanosPer(iters, [&] {
      benchmark::DoNotOptimize(ApplyOp(cold_op, wide));
    });
    Database multi = MultiRelationDatabase(32, 4);
    RenameAttrOp shared_op{"R1", "A1", "ZZ"};
    double succ_shared = NanosPer(iters, [&] {
      benchmark::DoNotOptimize(ApplyOp(shared_op, multi));
    });

    SuccessorConfig uncached_config;
    uncached_config.expand_cache_capacity = 0;
    MappingProblem uncached(
        pair.source, pair.target,
        MakeHeuristic(HeuristicKind::kH1, pair.target, SearchAlgorithm::kRbfs),
        nullptr, {}, uncached_config);
    double expand_uncached = NanosPer(expand_iters, [&] {
      benchmark::DoNotOptimize(uncached.Expand(pair.source));
    });
    MappingProblem cached(
        pair.source, pair.target,
        MakeHeuristic(HeuristicKind::kH1, pair.target, SearchAlgorithm::kRbfs));
    double expand_cached = NanosPer(expand_iters, [&] {
      benchmark::DoNotOptimize(cached.Expand(pair.source));
    });

    // Tracing overhead on the same uncached-expand path, plus the raw
    // per-emit cost: compare expand_traced_ns to expand_uncached_ns.
    obs::TraceSession traced_session;
    MappingProblem traced(
        pair.source, pair.target,
        MakeHeuristic(HeuristicKind::kH1, pair.target, SearchAlgorithm::kRbfs),
        nullptr, {}, uncached_config);
    traced.set_trace(&traced_session);
    double expand_traced = NanosPer(expand_iters, [&] {
      benchmark::DoNotOptimize(traced.Expand(pair.source));
    });
    double trace_emit = NanosPer(iters, [&] {
      traced_session.EmitInstant(obs::TraceCategory::kSearch, "bench.tick",
                                 "i", 1);
    });

    // Supervision overheads (schema 7): one heartbeat stamp, and the
    // uncached expand through the quarantine wrapper (empty denylist —
    // the steady state of a healthy run).
    HeartbeatSlot slot;
    uint64_t beat_i = 0;
    double heartbeat_tick = NanosPer(iters, [&] {
      slot.Beat(++beat_i, 64);
      benchmark::DoNotOptimize(&slot);
    });
    StateQuarantine quarantine(1024);
    double expand_supervised = NanosPer(expand_iters, [&] {
      benchmark::DoNotOptimize(
          GuardedExpand(uncached, pair.source, &quarantine));
    });

    // One real discovery run so the report's metrics carry the live
    // state.*/expand.* counters alongside the substrate timings.
    TupeloOptions options;
    options.algorithm = args.algo.empty()
                            ? SearchAlgorithm::kRbfs
                            : ParseSearchAlgorithm(args.algo).value_or(
                                  SearchAlgorithm::kRbfs);
    options.heuristic = HeuristicKind::kH1;
    options.threads = args.threads;
    options.limits.max_states = args.budget;
    options.limits.max_depth = static_cast<int>(n) + 4;
    trace.Apply(options);
    obs::MetricRegistry registry;
    bench::RunResult r = bench::Measure(pair.source, pair.target, options,
                                        nullptr, {},
                                        report.enabled() ? &registry : nullptr);

    char buf[32];
    auto ns = [&buf](double v) {
      std::snprintf(buf, sizeof(buf), "%.1f", v);
      return std::string(buf);
    };
    bench::PrintRow({std::to_string(n), ns(fp_cold), ns(fp_cached),
                     ns(succ_cold), ns(succ_shared), ns(expand_uncached),
                     ns(expand_cached), bench::FormatStates(r, args.budget)});

    if (report.enabled()) {
      obs::JsonValue run = bench::BenchReport::MakeRun(r);
      run["n"] = static_cast<uint64_t>(n);
      run["heuristic"] = std::string("h1");
      run["fingerprint_cold_ns"] = fp_cold;
      run["fingerprint_cached_ns"] = fp_cached;
      run["successor_cold_ns"] = succ_cold;
      run["successor_shared_ns"] = succ_shared;
      run["expand_uncached_ns"] = expand_uncached;
      run["expand_cached_ns"] = expand_cached;
      run["expand_traced_ns"] = expand_traced;
      run["trace_emit_ns"] = trace_emit;
      run["heartbeat_tick_ns"] = heartbeat_tick;
      run["expand_supervised_ns"] = expand_supervised;
      run["edit_short_ns"] = edit_short;
      run["edit_long_ns"] = edit_long;
      run["term_hash_ns"] = term_hash;
      run["term_merge_ns"] = term_merge;
      run["estimate_batch_ns"] = estimate_batch;
      run["metrics"] = registry.ToJson();
      trace.AnnotateRun(run);
      report.AddRun(std::move(run));
    }
  }
  bool ok = report.Write();
  ok = trace.Write() && ok;
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace tupelo

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--json=", 0) == 0) {
      return tupelo::RunJsonSuite(argc, argv);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
