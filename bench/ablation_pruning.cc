// Ablation: §2.3's "obviously inapplicable transformations" successor
// pruning, on vs off, across the three workload families. Shows how much
// of TUPELO's tractability comes from the candidate-generation rules
// rather than the heuristics.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workloads/bamm.h"
#include "workloads/flights.h"
#include "workloads/synthetic.h"

int main(int argc, char** argv) {
  using namespace tupelo;
  using namespace tupelo::bench;

  BenchArgs args = ParseBenchArgs(argc, argv, 50000);
  std::printf("# Ablation: successor pruning (\"obviously inapplicable\" "
              "rules, §2.3)\n");
  std::printf("# budget=%llu; RBFS with h1 and cosine\n\n",
              static_cast<unsigned long long>(args.budget));

  struct Task {
    std::string name;
    Database source;
    Database target;
  };
  std::vector<Task> tasks;
  for (size_t n : {2u, 4u, 6u}) {
    SyntheticMatchingPair pair = MakeSyntheticMatchingPair(n);
    tasks.push_back(
        {"synthetic_n" + std::to_string(n), pair.source, pair.target});
  }
  tasks.push_back({"flights_B_to_A", MakeFlightsB(), MakeFlightsA()});
  BammWorkload books = MakeBammWorkload(BammDomain::kBooks, args.seed);
  for (size_t i = 0; i < 3 && i < books.targets.size(); ++i) {
    tasks.push_back(
        {"bamm_books_" + std::to_string(i), books.source, books.targets[i]});
  }

  BenchReport report("ablation_pruning", args);
  BenchTrace trace(args);
  report.BeginPanel("pruning");

  auto record = [&](const Task& task, HeuristicKind kind, bool prune,
                    const RunResult& r, const obs::MetricRegistry& reg) {
    if (!report.enabled()) return;
    obs::JsonValue run = BenchReport::MakeRun(r);
    run["task"] = task.name;
    run["heuristic"] = std::string(HeuristicKindName(kind));
    run["prune"] = prune;
    run["metrics"] = reg.ToJson();
    trace.AnnotateRun(run);
    report.AddRun(std::move(run));
  };

  PrintRow({"task", "heuristic", "pruned", "unpruned", "ratio"}, 16);
  for (const Task& task : tasks) {
    for (HeuristicKind kind : {HeuristicKind::kH1, HeuristicKind::kCosine}) {
      TupeloOptions options;
      options.algorithm = SearchAlgorithm::kRbfs;
      options.heuristic = kind;
      options.limits.max_states = args.budget;
      options.limits.max_depth = 16;
      trace.Apply(options);

      obs::MetricRegistry pruned_reg;
      options.successors.prune = true;
      RunResult pruned = Measure(task.source, task.target, options, nullptr,
                                 {}, report.enabled() ? &pruned_reg : nullptr);
      record(task, kind, true, pruned, pruned_reg);
      obs::MetricRegistry unpruned_reg;
      options.successors.prune = false;
      RunResult unpruned =
          Measure(task.source, task.target, options, nullptr, {},
                  report.enabled() ? &unpruned_reg : nullptr);
      record(task, kind, false, unpruned, unpruned_reg);

      std::string ratio = "-";
      if (pruned.found && unpruned.found && pruned.states > 0) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.1fx",
                      static_cast<double>(unpruned.states) /
                          static_cast<double>(pruned.states));
        ratio = buf;
      }
      PrintRow({task.name, std::string(HeuristicKindName(kind)),
                FormatStates(pruned, args.budget),
                FormatStates(unpruned, args.budget), ratio},
               16);
    }
  }
  report.Write();
  trace.Write();
  return 0;
}
