// Extension study: the joint (attribute, value) "pairs" heuristic —
// this repository's answer to §7's structure+content question — run over
// all three of the paper's experiment families against the best paper
// heuristics (h1 and cosine), under RBFS.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workloads/bamm.h"
#include "workloads/semantic.h"
#include "workloads/synthetic.h"

int main(int argc, char** argv) {
  using namespace tupelo;
  using namespace tupelo::bench;

  BenchArgs args = ParseBenchArgs(argc, argv, 50000);
  std::printf("# Extension: 'pairs' heuristic vs the paper's best (RBFS)\n");
  std::printf("# states examined; budget=%llu\n\n",
              static_cast<unsigned long long>(args.budget));

  std::vector<HeuristicKind> kinds = {HeuristicKind::kH1,
                                      HeuristicKind::kCosine,
                                      HeuristicKind::kPairs};

  BenchReport report("extension_pairs", args);
  BenchTrace trace(args);

  // `axis` carries the per-row axis fields copied into every JSON run.
  auto run = [&](const Database& source, const Database& target,
                 const FunctionRegistry* registry,
                 const std::vector<SemanticCorrespondence>& corrs,
                 int max_depth, const obs::JsonValue& axis) {
    std::vector<std::string> cells;
    for (HeuristicKind kind : kinds) {
      TupeloOptions options;
      options.algorithm = SearchAlgorithm::kRbfs;
      options.heuristic = kind;
      options.limits.max_states = args.budget;
      options.limits.max_depth = max_depth;
      trace.Apply(options);
      obs::MetricRegistry registry_obs;
      RunResult r = Measure(source, target, options, registry, corrs,
                            report.enabled() ? &registry_obs : nullptr);
      if (report.enabled()) {
        obs::JsonValue json_run = BenchReport::MakeRun(r);
        for (const auto& [key, value] : axis.members()) {
          json_run[key] = value;
        }
        json_run["heuristic"] = std::string(HeuristicKindName(kind));
        json_run["metrics"] = registry_obs.ToJson();
        trace.AnnotateRun(json_run);
        report.AddRun(std::move(json_run));
      }
      cells.push_back(FormatStates(r, args.budget));
    }
    return cells;
  };

  std::printf("## Experiment 1: synthetic schema matching\n");
  report.BeginPanel("synthetic");
  PrintRow({"n", "h1", "cosine", "pairs"});
  std::vector<size_t> sizes = {2, 4, 8, 16, 32};
  if (args.quick) sizes = {2, 8};
  for (size_t n : sizes) {
    SyntheticMatchingPair pair = MakeSyntheticMatchingPair(n);
    std::vector<std::string> row = {std::to_string(n)};
    obs::JsonValue axis = obs::JsonValue::Object();
    axis["n"] = static_cast<uint64_t>(n);
    for (std::string& cell :
         run(pair.source, pair.target, nullptr, {},
             static_cast<int>(n) + 4, axis)) {
      row.push_back(std::move(cell));
    }
    PrintRow(row);
  }

  std::printf("\n## Experiment 2: BAMM (average per domain)\n");
  report.BeginPanel("bamm");
  PrintRow({"domain", "h1", "cosine", "pairs"});
  for (BammDomain domain : AllBammDomains()) {
    BammWorkload w = MakeBammWorkload(domain, args.seed);
    size_t limit = args.quick ? 6 : w.targets.size();
    std::vector<double> totals(kinds.size(), 0.0);
    size_t runs = 0;
    for (size_t i = 0; i < limit && i < w.targets.size(); ++i) {
      for (size_t k = 0; k < kinds.size(); ++k) {
        TupeloOptions options;
        options.algorithm = SearchAlgorithm::kRbfs;
        options.heuristic = kinds[k];
        options.limits.max_states = args.budget;
        options.limits.max_depth = 12;
        trace.Apply(options);
        obs::MetricRegistry registry;
        RunResult r = Measure(w.source, w.targets[i], options, nullptr, {},
                              report.enabled() ? &registry : nullptr);
        if (report.enabled()) {
          obs::JsonValue json_run = BenchReport::MakeRun(r);
          json_run["domain"] = std::string(BammDomainName(domain));
          json_run["target_index"] = static_cast<uint64_t>(i);
          json_run["heuristic"] = std::string(HeuristicKindName(kinds[k]));
          json_run["metrics"] = registry.ToJson();
          trace.AnnotateRun(json_run);
          report.AddRun(std::move(json_run));
        }
        totals[k] += r.found ? static_cast<double>(r.states)
                             : static_cast<double>(args.budget);
      }
      ++runs;
    }
    std::vector<std::string> row = {std::string(BammDomainName(domain))};
    for (double total : totals) {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.1f",
                    runs == 0 ? 0.0 : total / static_cast<double>(runs));
      row.emplace_back(buf);
    }
    PrintRow(row);
  }

  std::printf("\n## Experiment 3: Inventory complex mapping\n");
  report.BeginPanel("semantic");
  PrintRow({"#fns", "h1", "cosine", "pairs"});
  size_t max_fns = args.quick ? 4 : 8;
  for (size_t k = 1; k <= max_fns; ++k) {
    SemanticWorkload w = MakeSemanticWorkload(SemanticDomain::kInventory, k);
    std::vector<std::string> row = {std::to_string(k)};
    obs::JsonValue axis = obs::JsonValue::Object();
    axis["functions"] = static_cast<uint64_t>(k);
    for (std::string& cell :
         run(w.source, w.target, &w.registry, w.correspondences,
             static_cast<int>(k) + 6, axis)) {
      row.push_back(std::move(cell));
    }
    PrintRow(row);
  }
  report.Write();
  trace.Write();
  return 0;
}
