// Regenerates Figure 8 (§5.2): average states examined for mapping
// discovery across all four BAMM domains, IDA* vs RBFS.

#include <cstdio>

#include "bamm_panels.h"

int main(int argc, char** argv) {
  using namespace tupelo;
  using namespace tupelo::bench;

  BenchArgs args = ParseBenchArgs(argc, argv, 20000);
  std::printf("# Experiment 2 (BAMM), all-domain averages\n");
  std::printf("# budget=%llu; seed=%llu\n\n",
              static_cast<unsigned long long>(args.budget),
              static_cast<unsigned long long>(args.seed));

  BenchReport report("fig8_bamm_overall", args);
  BenchTrace trace(args);
  BammTable table = RunBammExperiment(args, &report, &trace);

  std::vector<std::string> header = {"method"};
  for (HeuristicKind kind : AllHeuristicKinds()) {
    header.emplace_back(HeuristicKindName(kind));
  }
  PrintRow(header);

  for (SearchAlgorithm algo :
       {SearchAlgorithm::kIda, SearchAlgorithm::kRbfs}) {
    std::vector<std::string> row = {
        std::string(SearchAlgorithmName(algo))};
    for (HeuristicKind kind : AllHeuristicKinds()) {
      double total = 0.0;
      size_t cutoffs = 0;
      size_t runs = 0;
      for (BammDomain domain : AllBammDomains()) {
        const BammCell& cell = table[domain][algo][kind];
        total += cell.average_states * static_cast<double>(cell.runs);
        cutoffs += cell.cutoffs;
        runs += cell.runs;
      }
      BammCell overall;
      overall.average_states =
          runs == 0 ? 0.0 : total / static_cast<double>(runs);
      overall.cutoffs = cutoffs;
      overall.runs = runs;
      row.push_back(FormatAvg(overall));
    }
    PrintRow(row);
  }
  report.Write();
  trace.Write();
  return 0;
}
