#ifndef TUPELO_BENCH_BENCH_UTIL_H_
#define TUPELO_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/tupelo.h"
#include "obs/json_writer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/database.h"

namespace tupelo::bench {

// One measured discovery run.
struct RunResult {
  bool found = false;
  bool cutoff = false;  // budget exhausted before success
  std::string stop_reason = "exhausted";  // StopReasonName of the outcome
  bool verified = false;       // replay re-check passed (found runs only)
  std::string verify_error;    // verify_status text when the re-check failed
  int64_t deadline_millis = 0;  // the run's wall-clock budget (0: none)
  uint64_t states = 0;  // states examined (the paper's measure)
  uint64_t states_generated = 0;
  uint64_t iterations = 0;
  uint64_t peak_memory_nodes = 0;
  int depth = -1;
  double millis = 0.0;
  bool resumed = false;           // run restarted from a checkpoint
  uint64_t checkpoint_writes = 0;  // checkpoint files written during the run
};

// Runs TUPELO once and measures it. With a non-null `metrics`, the run
// populates the registry (search.*, heuristic.*, executor.*, phase.*) for
// inclusion in a JSON run report.
RunResult Measure(const Database& source, const Database& target,
                  const TupeloOptions& options,
                  const FunctionRegistry* registry = nullptr,
                  const std::vector<SemanticCorrespondence>& corrs = {},
                  obs::MetricRegistry* metrics = nullptr);

// "123", or ">250000*" when the run hit the state budget.
std::string FormatStates(const RunResult& r, uint64_t budget);

// Prints a row of cells padded to `width`.
void PrintRow(const std::vector<std::string>& cells, int width = 12);

// Parses "--budget=N" / "--quick" / "--json=path" style flags shared by
// the harnesses.
struct BenchArgs {
  uint64_t budget = 250000;
  bool quick = false;  // smaller sweeps for smoke runs
  uint64_t seed = 2006;
  std::string json_path;  // empty: no JSON report
  // Worker threads for the parallel runtime (TupeloOptions::threads);
  // recorded at the report root so before/after records are comparable.
  uint64_t threads = 1;
  // Optional algorithm override ("--algo=beam" runs a figure harness's
  // panels under beam instead of its default algorithm); unset when empty.
  std::string algo;
  // --trace=path: record a Chrome trace-event JSON of the whole harness
  // run (one TraceSession shared across every measured run; open the file
  // in Perfetto). Empty: tracing off.
  std::string trace_path;
  // --trace-buffer-kb=N: per-thread trace ring size (obs/trace.h).
  uint64_t trace_buffer_kb = 256;
  // --flight-recorder: also arm TupeloOptions::flight_recorder_path at
  // "<trace_path>.flight" so runs that end badly dump their last events.
  // Requires --trace=.
  bool flight_recorder = false;
};
// `default_budget` applies when no --budget flag is given; figure
// harnesses pick defaults matched to their paper axis ranges.
BenchArgs ParseBenchArgs(int argc, char** argv,
                         uint64_t default_budget = 250000);

// The current git commit SHA, or "unknown" outside a work tree.
std::string GitSha();

// Trace wiring shared by the harnesses: owns the TraceSession named by
// --trace=, threads it into each measured run's options, annotates the
// per-run JSON with that run's event/drop deltas, and writes the Chrome
// trace-event export at the end. Every method is a cheap no-op when
// --trace= was not given, so harnesses call them unconditionally (same
// convention as BenchReport).
class BenchTrace {
 public:
  explicit BenchTrace(const BenchArgs& args);
  ~BenchTrace();

  BenchTrace(const BenchTrace&) = delete;
  BenchTrace& operator=(const BenchTrace&) = delete;

  bool enabled() const { return session_ != nullptr; }
  obs::TraceSession* session() { return session_.get(); }

  // Sets options.trace (and flight_recorder_path, under --flight-recorder)
  // for one measured run.
  void Apply(TupeloOptions& options);

  // Adds the schema-7 per-run fields — "trace_path", "trace_events",
  // "trace_dropped" (deltas since the previous AnnotateRun) — to a run
  // object built by BenchReport::MakeRun.
  void AnnotateRun(obs::JsonValue& run);

  // Writes the Chrome trace JSON to the --trace= path; false (with a
  // stderr note) on I/O failure. No-op (true) when disabled.
  bool Write() const;

 private:
  std::string path_;
  std::string flight_path_;
  std::unique_ptr<obs::TraceSession> session_;
  uint64_t last_recorded_ = 0;
  uint64_t last_dropped_ = 0;
};

// Accumulates a machine-readable run report and writes it to the --json
// path on Write(). Layout (schema_version 10):
//
//   {"schema_version":10, "harness":..., "git_sha":..., "seed":...,
//    "quick":..., "budget":..., "threads":...,
//    "panels":[{"name":..., "runs":[{...axis fields..., "found":...,
//               "cutoff":..., "stop_reason":..., "verified":...,
//               "verify_error":..., "deadline_millis":...,
//               "states_examined":..., "wall_millis":...,
//               "resumed":..., "checkpoint_writes":...,
//               "metrics":{...MetricRegistry::ToJson()...}}, ...]}]}
//
// Schema 3 additions: run metrics may carry the state-substrate counters
// (state.cow_copies, state.relations_shared, expand.cache_hits/misses/
// evictions), and micro_bench --json runs carry *_ns per-substrate
// timing fields (see check_bench_json.py).
//
// Schema 4 additions: a root "threads" field (the --threads worker count
// the harness ran with), and run metrics may carry the parallel-runtime
// instruments (runtime.threads, beam.parallel.levels/tasks).
//
// Schema 5 additions: per-run "resumed" and "checkpoint_writes" fields
// (checkpoint/resume bookkeeping), and run metrics may carry the
// checkpoint.* instruments (checkpoint.writes/bytes,
// checkpoint.resume.rungs_skipped).
//
// Schema 6 additions: traced runs (--trace=) carry per-run "trace_path"
// (the harness-level Chrome trace file), "trace_events" and
// "trace_dropped" (this run's recorded/dropped event deltas; see
// BenchTrace::AnnotateRun), and run metrics may carry the trace.*
// counters (trace.events_recorded/events_dropped).
//
// Schema 7 additions: run metrics may carry the supervision instruments
// and micro_bench runs the heartbeat_tick_ns/expand_supervised_ns
// timings.
//
// Schema 8 additions: a root "simd_dispatch" field (the runtime kernel
// tier the harness ran with — "scalar", "sse42", or "avx2"; see
// common/simd/dispatch.h), micro_bench runs carry the kernel timings
// edit_short_ns/edit_long_ns/term_hash_ns/term_merge_ns/
// estimate_batch_ns, and run metrics may carry the state.tnf_* counters
// and heuristic.levenshtein.tnf_hits/tnf_misses.
//
// Schema 9 additions: the compiled executor (fira/compile.h). Runs may
// carry an "executor" field ("interpreter" or "compiled"); bench_apply
// runs carry "case"/"tuples"/"apply_ns" (plus "speedup" and the
// fused_ops/interpreted_ops/segments plan shape on compiled runs), and
// run metrics may carry the executor.fused.* counters.
//
// All methods are no-ops when constructed with an empty json_path, so
// harnesses call them unconditionally.
class BenchReport {
 public:
  BenchReport(std::string harness, const BenchArgs& args);

  bool enabled() const { return enabled_; }

  // Starts a new panel; subsequent AddRun calls attach to it.
  void BeginPanel(const std::string& name);

  // The standard per-run fields from a RunResult; callers add axis fields
  // (e.g. "depth", "relations") and a "metrics" object on top.
  static obs::JsonValue MakeRun(const RunResult& r);

  void AddRun(obs::JsonValue run);

  // Writes the report file; returns false (with a stderr note) on I/O
  // failure. No-op (true) when disabled.
  bool Write() const;

 private:
  bool enabled_ = false;
  std::string path_;
  obs::JsonValue root_;
};

}  // namespace tupelo::bench

#endif  // TUPELO_BENCH_BENCH_UTIL_H_
