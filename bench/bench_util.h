#ifndef TUPELO_BENCH_BENCH_UTIL_H_
#define TUPELO_BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/tupelo.h"
#include "relational/database.h"

namespace tupelo::bench {

// One measured discovery run.
struct RunResult {
  bool found = false;
  bool cutoff = false;  // budget exhausted before success
  uint64_t states = 0;  // states examined (the paper's measure)
  int depth = -1;
  double millis = 0.0;
};

// Runs TUPELO once and measures it.
RunResult Measure(const Database& source, const Database& target,
                  const TupeloOptions& options,
                  const FunctionRegistry* registry = nullptr,
                  const std::vector<SemanticCorrespondence>& corrs = {});

// "123", or ">250000*" when the run hit the state budget.
std::string FormatStates(const RunResult& r, uint64_t budget);

// Prints a row of cells padded to `width`.
void PrintRow(const std::vector<std::string>& cells, int width = 12);

// Parses "--budget=N" / "--quick" style flags shared by the harnesses.
struct BenchArgs {
  uint64_t budget = 250000;
  bool quick = false;  // smaller sweeps for smoke runs
  uint64_t seed = 2006;
};
// `default_budget` applies when no --budget flag is given; figure
// harnesses pick defaults matched to their paper axis ranges.
BenchArgs ParseBenchArgs(int argc, char** argv,
                         uint64_t default_budget = 250000);

}  // namespace tupelo::bench

#endif  // TUPELO_BENCH_BENCH_UTIL_H_
