// Ablation: sensitivity of the scaled heuristics (normalized Euclidean,
// cosine, Levenshtein) to the scaling constant k, recovering the shape of
// the paper's constants table (§5, Experimental Setup): small k for IDA*,
// larger k for RBFS.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workloads/bamm.h"
#include "workloads/synthetic.h"

int main(int argc, char** argv) {
  using namespace tupelo;
  using namespace tupelo::bench;

  BenchArgs args = ParseBenchArgs(argc, argv, 50000);
  std::printf("# Ablation: scaling constant k sweep\n");
  std::printf("# total states examined over the task bundle; budget=%llu "
              "per run\n\n",
              static_cast<unsigned long long>(args.budget));

  // Task bundle: synthetic n=4,6 plus a few BAMM books targets.
  struct Task {
    Database source;
    Database target;
  };
  std::vector<Task> tasks;
  for (size_t n : {4u, 6u}) {
    SyntheticMatchingPair pair = MakeSyntheticMatchingPair(n);
    tasks.push_back({pair.source, pair.target});
  }
  BammWorkload books = MakeBammWorkload(BammDomain::kBooks, args.seed);
  for (size_t i = 0; i < 4 && i < books.targets.size(); ++i) {
    tasks.push_back({books.source, books.targets[i]});
  }

  std::vector<double> ks = {1, 2, 3, 5, 7, 9, 11, 15, 20, 24, 28};
  if (args.quick) ks = {1, 5, 11, 24};

  BenchReport report("ablation_k_sweep", args);
  BenchTrace trace(args);

  for (HeuristicKind kind :
       {HeuristicKind::kEuclideanNorm, HeuristicKind::kCosine,
        HeuristicKind::kLevenshtein}) {
    std::printf("## %s\n", std::string(HeuristicKindName(kind)).c_str());
    report.BeginPanel(std::string(HeuristicKindName(kind)));
    PrintRow({"k", "ida_total", "rbfs_total"}, 14);
    for (double k : ks) {
      std::vector<std::string> row = {std::to_string(int(k))};
      for (SearchAlgorithm algo :
           {SearchAlgorithm::kIda, SearchAlgorithm::kRbfs}) {
        uint64_t total = 0;
        bool all_found = true;
        for (size_t t = 0; t < tasks.size(); ++t) {
          const Task& task = tasks[t];
          TupeloOptions options;
          options.algorithm = algo;
          options.heuristic = kind;
          options.scale_k = k;
          options.limits.max_states = args.budget;
          options.limits.max_depth = 14;
          trace.Apply(options);
          obs::MetricRegistry registry;
          RunResult r = Measure(task.source, task.target, options, nullptr,
                                {}, report.enabled() ? &registry : nullptr);
          if (report.enabled()) {
            obs::JsonValue run = BenchReport::MakeRun(r);
            run["k"] = k;
            run["algo"] = std::string(SearchAlgorithmName(algo));
            run["task_index"] = static_cast<uint64_t>(t);
            run["metrics"] = registry.ToJson();
            trace.AnnotateRun(run);
            report.AddRun(std::move(run));
          }
          total += r.found ? r.states : args.budget;
          if (!r.found) all_found = false;
        }
        row.push_back(std::to_string(total) + (all_found ? "" : "*"));
      }
      PrintRow(row, 14);
    }
    std::printf("\n");
  }
  std::printf("# '*' marks sweeps where at least one task hit the budget\n");
  report.Write();
  trace.Write();
  return 0;
}
