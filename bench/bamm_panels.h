#ifndef TUPELO_BENCH_BAMM_PANELS_H_
#define TUPELO_BENCH_BAMM_PANELS_H_

// Shared implementation of Figures 7 and 8 (Experiment 2, §5.2): mapping
// a fixed deep-web query schema to every other schema of its domain, for
// all heuristics and both linear-memory algorithms. The measure is the
// average number of states examined per domain (Fig. 7) and across all
// domains (Fig. 8). Runs that exhaust the state budget contribute the
// budget value to the average (and are counted in the "cutoffs" line).

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workloads/bamm.h"

namespace tupelo::bench {

struct BammCell {
  double average_states = 0.0;
  size_t cutoffs = 0;
  size_t runs = 0;
};

// avg states per (domain, algo, heuristic).
using BammTable =
    std::map<BammDomain, std::map<SearchAlgorithm,
                                  std::map<HeuristicKind, BammCell>>>;

// With a non-null enabled `report`, emits one panel per (domain, algo)
// pair whose runs carry heuristic/target_index axis fields plus the full
// per-run metric registry snapshot. With a non-null `trace`, every run
// records into its session (the caller writes the export).
inline BammTable RunBammExperiment(const BenchArgs& args,
                                   BenchReport* report = nullptr,
                                   BenchTrace* trace = nullptr) {
  bool record = report != nullptr && report->enabled();
  BammTable table;
  for (BammDomain domain : AllBammDomains()) {
    BammWorkload workload = MakeBammWorkload(domain, args.seed);
    size_t limit = args.quick ? 8 : workload.targets.size();
    for (SearchAlgorithm algo :
         {SearchAlgorithm::kIda, SearchAlgorithm::kRbfs}) {
      if (record) {
        report->BeginPanel(std::string(BammDomainName(domain)) + "." +
                           std::string(SearchAlgorithmName(algo)));
      }
      for (HeuristicKind kind : AllHeuristicKinds()) {
        BammCell& cell = table[domain][algo][kind];
        uint64_t total = 0;
        for (size_t i = 0; i < limit && i < workload.targets.size(); ++i) {
          TupeloOptions options;
          options.algorithm = algo;
          options.heuristic = kind;
          options.limits.max_states = args.budget;
          options.limits.max_depth = 12;
          if (trace != nullptr) trace->Apply(options);
          obs::MetricRegistry registry;
          RunResult r =
              Measure(workload.source, workload.targets[i], options, nullptr,
                      {}, record ? &registry : nullptr);
          if (record) {
            obs::JsonValue run = BenchReport::MakeRun(r);
            run["heuristic"] = std::string(HeuristicKindName(kind));
            run["target_index"] = static_cast<uint64_t>(i);
            run["metrics"] = registry.ToJson();
            if (trace != nullptr) trace->AnnotateRun(run);
            report->AddRun(std::move(run));
          }
          total += r.found ? r.states : args.budget;
          if (!r.found) ++cell.cutoffs;
          ++cell.runs;
        }
        cell.average_states =
            cell.runs == 0 ? 0.0
                           : static_cast<double>(total) /
                                 static_cast<double>(cell.runs);
      }
    }
  }
  return table;
}

inline std::string FormatAvg(const BammCell& cell) {
  char buf[64];
  if (cell.cutoffs > 0) {
    std::snprintf(buf, sizeof(buf), "%.1f(%zux)", cell.average_states,
                  cell.cutoffs);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", cell.average_states);
  }
  return buf;
}

}  // namespace tupelo::bench

#endif  // TUPELO_BENCH_BAMM_PANELS_H_
