// Ablation: the paper's future-work question (§7) — is there a good
// multi-purpose heuristic measuring both structure and content? Compares
// h1 (structure), cosine (content), and their max/sum hybrids across all
// three workload families under RBFS.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/mapping_problem.h"
#include "fira/builtin_functions.h"
#include "heuristics/composite.h"
#include "heuristics/heuristic_factory.h"
#include "heuristics/set_based.h"
#include "heuristics/vector_heuristics.h"
#include "search/rbfs.h"
#include "workloads/bamm.h"
#include "workloads/flights.h"
#include "workloads/semantic.h"
#include "workloads/synthetic.h"

namespace {

using namespace tupelo;

std::unique_ptr<Heuristic> MakeNamed(const std::string& which,
                                     const Database& target) {
  double k = DefaultScale(HeuristicKind::kCosine, SearchAlgorithm::kRbfs);
  if (which == "h1") return std::make_unique<H1Heuristic>(target);
  if (which == "cosine") return std::make_unique<CosineHeuristic>(target, k);
  if (which == "jaccard") {
    return std::make_unique<JaccardHeuristic>(target, k);
  }
  if (which == "pairs") return std::make_unique<ColumnPairsHeuristic>(target);
  if (which == "max") return MakeHybridHeuristic(target, k);
  if (which == "sum") {
    std::vector<WeightedSumHeuristic::Term> terms;
    terms.push_back({0.5, std::make_unique<H1Heuristic>(target)});
    terms.push_back({0.5, std::make_unique<CosineHeuristic>(target, k)});
    return std::make_unique<WeightedSumHeuristic>(std::move(terms));
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tupelo::bench;

  BenchArgs args = ParseBenchArgs(argc, argv, 50000);
  std::printf("# Ablation: hybrid structure+content heuristics (§7)\n");
  std::printf("# states examined, RBFS; budget=%llu\n\n",
              static_cast<unsigned long long>(args.budget));

  FunctionRegistry registry;
  if (!RegisterBuiltinFunctions(&registry).ok()) return 1;

  struct Task {
    std::string name;
    Database source;
    Database target;
    std::vector<SemanticCorrespondence> corrs;
  };
  std::vector<Task> tasks;
  for (size_t n : {4u, 8u}) {
    SyntheticMatchingPair pair = MakeSyntheticMatchingPair(n);
    tasks.push_back({"synthetic_n" + std::to_string(n), pair.source,
                     pair.target, {}});
  }
  tasks.push_back(
      {"flights_B_to_A", MakeFlightsB(), MakeFlightsA(), {}});
  tasks.push_back({"flights_B_to_C", MakeFlightsB(), MakeFlightsC(),
                   FlightsBToCCorrespondences()});
  BammWorkload books = MakeBammWorkload(BammDomain::kBooks, args.seed);
  for (size_t i = 0; i < 3 && i < books.targets.size(); ++i) {
    tasks.push_back({"bamm_books_" + std::to_string(i), books.source,
                     books.targets[i], {}});
  }
  SemanticWorkload inv = MakeSemanticWorkload(SemanticDomain::kInventory, 4);
  tasks.push_back({"inventory_4fn", inv.source, inv.target,
                   inv.correspondences});

  std::vector<std::string> variants = {"h1", "cosine", "jaccard", "pairs", "max", "sum"};
  std::vector<std::string> header = {"task"};
  for (const std::string& v : variants) header.push_back(v);
  PrintRow(header, 16);

  BenchReport report("ablation_hybrid", args);
  BenchTrace trace(args);
  report.BeginPanel("hybrids");

  for (const Task& task : tasks) {
    std::vector<std::string> row = {task.name};
    for (const std::string& which : variants) {
      MappingProblem problem(task.source, task.target,
                             MakeNamed(which, task.target), &registry,
                             task.corrs);
      obs::MetricRegistry reg;
      obs::MetricRegistry* metrics = report.enabled() ? &reg : nullptr;
      problem.set_metrics(metrics);
      problem.set_trace(trace.session());
      SearchLimits limits;
      limits.max_states = args.budget;
      limits.max_depth = 16;
      auto start = std::chrono::steady_clock::now();
      SearchOutcome<Op> outcome = RbfsSearch(problem, limits, nullptr,
                                              metrics, nullptr,
                                              trace.session());
      RunResult r;
      r.found = outcome.found;
      r.cutoff = outcome.budget_exhausted;
      r.states = outcome.stats.states_examined;
      r.states_generated = outcome.stats.states_generated;
      r.iterations = outcome.stats.iterations;
      r.peak_memory_nodes = outcome.stats.peak_memory_nodes;
      r.depth = outcome.stats.solution_cost;
      r.millis = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - start)
                     .count();
      if (report.enabled()) {
        obs::JsonValue run = BenchReport::MakeRun(r);
        run["task"] = task.name;
        run["variant"] = which;
        run["metrics"] = reg.ToJson();
        trace.AnnotateRun(run);
        report.AddRun(std::move(run));
      }
      row.push_back(FormatStates(r, args.budget));
    }
    PrintRow(row, 16);
  }
  report.Write();
  trace.Write();
  return 0;
}
