// Finer-grained view of Experiment 2: average states examined as a
// function of the *target schema arity* (1..8 attributes), pooled across
// the four BAMM domains. The paper aggregates per domain (Fig. 7); this
// breakdown shows the cost drivers — mapping depth tracks the number of
// synonym-renamed attributes, which grows with arity.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "workloads/bamm.h"

int main(int argc, char** argv) {
  using namespace tupelo;
  using namespace tupelo::bench;

  BenchArgs args = ParseBenchArgs(argc, argv, 20000);
  std::printf("# BAMM cost by target schema arity (all domains pooled)\n");
  std::printf("# average states examined, RBFS; budget=%llu; seed=%llu\n\n",
              static_cast<unsigned long long>(args.budget),
              static_cast<unsigned long long>(args.seed));

  std::vector<HeuristicKind> kinds = {HeuristicKind::kH0, HeuristicKind::kH1,
                                      HeuristicKind::kEuclideanNorm,
                                      HeuristicKind::kCosine};

  struct Bucket {
    uint64_t total = 0;
    size_t runs = 0;
    size_t cutoffs = 0;
  };
  // arity -> heuristic -> bucket
  std::map<size_t, std::map<HeuristicKind, Bucket>> buckets;

  BenchReport report("bamm_by_size", args);
  BenchTrace trace(args);

  for (BammDomain domain : AllBammDomains()) {
    BammWorkload w = MakeBammWorkload(domain, args.seed);
    report.BeginPanel(std::string(BammDomainName(domain)));
    size_t limit = args.quick ? 8 : w.targets.size();
    for (size_t i = 0; i < limit && i < w.targets.size(); ++i) {
      const Database& target = w.targets[i];
      size_t arity = target.relations().begin()->second->arity();
      for (HeuristicKind kind : kinds) {
        TupeloOptions options;
        options.algorithm = SearchAlgorithm::kRbfs;
        options.heuristic = kind;
        options.limits.max_states = args.budget;
        options.limits.max_depth = 12;
        trace.Apply(options);
        obs::MetricRegistry registry;
        RunResult r = Measure(w.source, target, options, nullptr, {},
                              report.enabled() ? &registry : nullptr);
        if (report.enabled()) {
          obs::JsonValue run = BenchReport::MakeRun(r);
          run["arity"] = static_cast<uint64_t>(arity);
          run["target_index"] = static_cast<uint64_t>(i);
          run["heuristic"] = std::string(HeuristicKindName(kind));
          run["metrics"] = registry.ToJson();
          trace.AnnotateRun(run);
          report.AddRun(std::move(run));
        }
        Bucket& b = buckets[arity][kind];
        b.total += r.found ? r.states : args.budget;
        if (!r.found) ++b.cutoffs;
        ++b.runs;
      }
    }
  }

  std::vector<std::string> header = {"arity", "n"};
  for (HeuristicKind kind : kinds) {
    header.emplace_back(HeuristicKindName(kind));
  }
  PrintRow(header);
  for (const auto& [arity, per_kind] : buckets) {
    size_t runs = per_kind.begin()->second.runs;
    std::vector<std::string> row = {std::to_string(arity),
                                    std::to_string(runs)};
    for (HeuristicKind kind : kinds) {
      const Bucket& b = per_kind.at(kind);
      char buf[64];
      double avg =
          b.runs == 0 ? 0.0
                      : static_cast<double>(b.total) /
                            static_cast<double>(b.runs);
      if (b.cutoffs > 0) {
        std::snprintf(buf, sizeof(buf), "%.1f(%zux)", avg, b.cutoffs);
      } else {
        std::snprintf(buf, sizeof(buf), "%.1f", avg);
      }
      row.emplace_back(buf);
    }
    PrintRow(row);
  }
  report.Write();
  trace.Write();
  return 0;
}
