// Data-metadata restructuring at scale (the paper's Fig. 1 scenario; its
// §5.4 cites the WIRI'05 companion paper [11] for this validation): states
// examined when mapping between the wide/flat/split representations of the
// flight-price database, as the instance grows. §5.4 reports that no one
// heuristic dominated on restructuring — this harness makes that visible.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fira/builtin_functions.h"
#include "workloads/restructuring.h"

int main(int argc, char** argv) {
  using namespace tupelo;
  using namespace tupelo::bench;

  BenchArgs args = ParseBenchArgs(argc, argv, 50000);
  std::printf("# Fig. 1 data-metadata restructuring, scaled\n");
  std::printf("# states examined, RBFS; budget=%llu\n\n",
              static_cast<unsigned long long>(args.budget));

  std::vector<HeuristicKind> kinds = {
      HeuristicKind::kH1, HeuristicKind::kH3, HeuristicKind::kEuclideanNorm,
      HeuristicKind::kCosine, HeuristicKind::kLevenshtein};

  struct Shape {
    size_t carriers;
    size_t routes;
  };
  std::vector<Shape> shapes = {{2, 2}, {2, 3}, {3, 3}, {3, 4}};
  if (args.quick) shapes = {{2, 2}, {2, 3}};

  BenchReport report("fig1_restructuring", args);
  BenchTrace trace(args);

  for (const char* direction : {"flat->wide", "wide->flat", "flat->split"}) {
    std::printf("## %s\n", direction);
    report.BeginPanel(direction);
    std::vector<std::string> header = {"carriers", "routes"};
    for (HeuristicKind kind : kinds) {
      header.emplace_back(HeuristicKindName(kind));
    }
    PrintRow(header);
    for (const Shape& shape : shapes) {
      RestructuringWorkload w =
          MakeRestructuringWorkload(shape.carriers, shape.routes);
      const Database* source = &w.flat;
      const Database* target = &w.wide;
      std::vector<SemanticCorrespondence> corrs;
      const FunctionRegistry* registry = nullptr;
      FunctionRegistry local;
      if (std::string(direction) == "wide->flat") {
        source = &w.wide;
        target = &w.flat;
      } else if (std::string(direction) == "flat->split") {
        target = &w.split;
        corrs = w.flat_to_split;
        Status st = RegisterBuiltinFunctions(&local);
        if (!st.ok()) return 1;
        registry = &local;
      }
      std::vector<std::string> row = {std::to_string(shape.carriers),
                                      std::to_string(shape.routes)};
      for (size_t i = 0; i < kinds.size(); ++i) {
        TupeloOptions options;
        options.algorithm = SearchAlgorithm::kRbfs;
        options.heuristic = kinds[i];
        options.limits.max_states = args.budget;
        options.limits.max_depth =
            static_cast<int>(shape.routes + shape.carriers) + 8;
        trace.Apply(options);
        obs::MetricRegistry reg;
        RunResult r = Measure(*source, *target, options, registry, corrs,
                              report.enabled() ? &reg : nullptr);
        row.push_back(FormatStates(r, args.budget));
        if (report.enabled()) {
          obs::JsonValue run = BenchReport::MakeRun(r);
          run["carriers"] = static_cast<uint64_t>(shape.carriers);
          run["routes"] = static_cast<uint64_t>(shape.routes);
          run["heuristic"] = std::string(HeuristicKindName(kinds[i]));
          run["metrics"] = reg.ToJson();
          trace.AnnotateRun(run);
          report.AddRun(std::move(run));
        }
      }
      PrintRow(row);
    }
    std::printf("\n");
  }
  report.Write();
  trace.Write();
  return 0;
}
